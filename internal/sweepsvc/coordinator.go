package sweepsvc

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"surfbless/internal/probe"
	"surfbless/internal/simcache"
)

// DefaultLeaseTTL is the lease lifetime when CoordinatorOptions leaves
// it zero.  Workers renew at a third of the TTL, so three consecutive
// missed heartbeats forfeit the lease.
const DefaultLeaseTTL = 10 * time.Second

// Hooks are the coordinator's observation points for tests and the
// chaos harness (nil = disabled, like every hook in this repository).
//
//hook:nil-disabled
type Hooks struct {
	// LeaseGranted fires after a lease is handed to a worker.
	LeaseGranted func(job string, point int, worker string)
	// LeaseExpired fires when an expiry sweep requeues a lease whose
	// worker stopped heartbeating.
	LeaseExpired func(job string, point int, worker string)
	// PointCompleted fires on every accepted completion; dup marks a
	// completion that arrived after the point was already done and was
	// dropped.
	PointCompleted func(job string, point int, dup bool)
}

// CoordinatorOptions configures a coordinator.
type CoordinatorOptions struct {
	// WALPath is the crash-safe journal; opening the same path resumes
	// every journaled job exactly.  Required.
	WALPath string
	// Store is the shared simcache-backed result store: lease grants
	// consult it (a stored result completes the point without a lease)
	// and ok-completions feed it.  Optional.
	Store *simcache.Cache
	// LeaseTTL is the lease lifetime between renewals (0 =
	// DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Clock overrides time.Now for lease-expiry tests.
	Clock func() time.Time
	// Metrics, when non-nil, receives the service counters
	// (leases granted/renewed/expired, requeues, completions,
	// duplicates, singleflight merges, store hits) for /metrics.
	Metrics *probe.Metrics
	// Hooks observe state transitions (nil-safe).
	Hooks *Hooks
}

// pointState is one point's position in the lease lifecycle.
type pointState int

const (
	pointPending pointState = iota
	pointLeased
	pointDone
)

// point is one work unit: a single (spec, rate) simulation.
type point struct {
	rate  float64
	key   simcache.Key
	keyOK bool

	state    pointState
	leaseID  string // valid while leased
	row      string
	status   string
	attempts int
	failed   bool
}

// job is one submitted spec and its points.
type job struct {
	id     string
	spec   Spec
	points []*point
	done   int
	failed int
}

func (j *job) complete() bool { return j.done == len(j.points) }

// lease is one granted work unit with its expiry.
type lease struct {
	id      string
	worker  string
	jobID   string
	point   int
	expires time.Time
}

// Lease is the wire form of a granted work unit.
type Lease struct {
	ID    string  `json:"id"`
	Job   string  `json:"job"`
	Point int     `json:"point"`
	Rate  float64 `json:"rate"`
	Spec  Spec    `json:"spec"`
	TTLMS int64   `json:"ttl_ms"`
}

// Completion is the wire form of a finished point report.
type Completion struct {
	Lease    string `json:"lease,omitempty"` // may be stale after a bounce
	Job      string `json:"job"`
	Point    int    `json:"point"`
	Row      string `json:"row"`
	Status   string `json:"status"`
	Attempts int    `json:"attempts"`
	Failed   bool   `json:"failed,omitempty"`
	// Result optionally carries the marshaled sim.Result of an ok
	// point so the coordinator can feed the shared store even when the
	// worker's cache directory is not shared.
	Result json.RawMessage `json:"result,omitempty"`
}

// PointRow is the wire form of one point's streamed output: its rate,
// stable fingerprint, completion state and CSV row.  Rows are reported
// in rate order; the fingerprint — not the row index — is the dedup
// key a streaming client must use, because a coordinator bounce with a
// torn WAL tail can revert a completed point to pending and re-complete
// it later, shifting which indexes are done between two polls.
type PointRow struct {
	Point       int     `json:"point"`
	Rate        float64 `json:"rate"`
	Fingerprint string  `json:"fingerprint,omitempty"` // empty when the rate cannot fingerprint
	Done        bool    `json:"done"`
	Failed      bool    `json:"failed,omitempty"`
	Row         string  `json:"row,omitempty"` // valid once Done
}

// JobStatus is the wire form of a job's progress.
type JobStatus struct {
	Job      string `json:"job"`
	Total    int    `json:"total"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Leased   int    `json:"leased"`
	Complete bool   `json:"complete"`
}

// coordCounters are the /metrics instruments.
type coordCounters struct {
	granted    probe.Counter
	renewed    probe.Counter
	expired    probe.Counter
	requeued   probe.Counter
	completed  probe.Counter
	duplicates probe.Counter
	merged     probe.Counter
	storeHits  probe.Counter
}

// Coordinator owns the sweep service's authoritative state: jobs,
// points, leases and the singleflight table, all journaled through the
// WAL.  Every exported method is safe for concurrent use; leases are
// expired lazily at the top of each mutating call (plus whatever
// cadence the server's ticker adds), so correctness never depends on a
// background goroutine.
type Coordinator struct {
	mu     sync.Mutex
	opts   CoordinatorOptions
	wal    *WAL
	jobs   map[string]*job
	order  []string // job admission order
	leases map[string]*lease
	// inflight maps a fingerprint to the lease currently executing it,
	// so identical points (across jobs) ride one execution: duplicates
	// are held back from leasing and completed from the first result.
	inflight map[simcache.Key]string
	seq      int64 // job / lease ID source
	// epoch scopes lease IDs to this coordinator incarnation.  WAL
	// replay rebuilds jobs without advancing seq, so after a bounce a
	// bare l<seq> counter would re-mint IDs that pre-bounce workers
	// still heartbeat — and a renewal (or completion) against such a
	// recycled ID would act on an unrelated lease.  Stamping the open
	// time into the ID keeps incarnations disjoint.
	epoch    int64
	counters coordCounters
	hooks    *Hooks
	closed   bool
}

// OpenCoordinator opens (or resumes) a coordinator over its WAL.
// Replay rebuilds jobs and completed points; leases are soft state and
// start empty, so points that were leased at crash time are simply
// pending again.
func OpenCoordinator(o CoordinatorOptions) (*Coordinator, error) {
	if o.WALPath == "" {
		return nil, fmt.Errorf("sweepsvc: coordinator needs a WAL path")
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = DefaultLeaseTTL
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	wal, recs, err := OpenWAL(o.WALPath)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		opts:     o,
		wal:      wal,
		jobs:     make(map[string]*job),
		leases:   make(map[string]*lease),
		inflight: make(map[simcache.Key]string),
		epoch:    o.Clock().UnixNano(),
		hooks:    o.Hooks,
	}
	if m := o.Metrics; m != nil {
		c.counters = coordCounters{
			granted:    m.Counter("surfbless_sweepd_leases_granted_total", "work-unit leases handed to workers"),
			renewed:    m.Counter("surfbless_sweepd_lease_renewals_total", "heartbeat lease renewals"),
			expired:    m.Counter("surfbless_sweepd_leases_expired_total", "leases forfeited by missed heartbeats"),
			requeued:   m.Counter("surfbless_sweepd_requeues_total", "points returned to pending (expiry or release)"),
			completed:  m.Counter("surfbless_sweepd_completions_total", "accepted point completions"),
			duplicates: m.Counter("surfbless_sweepd_duplicate_completions_total", "completions dropped because the point was already done"),
			merged:     m.Counter("surfbless_sweepd_singleflight_merged_total", "points completed from an identical in-flight execution"),
			storeHits:  m.Counter("surfbless_sweepd_store_hits_total", "points completed from the shared result store at lease time"),
		}
		m.GaugeFunc("surfbless_sweepd_jobs", "jobs admitted (incl. complete)", func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(len(c.jobs))
		})
		m.GaugeFunc("surfbless_sweepd_leases_active", "currently granted leases", func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(len(c.leases))
		})
	}
	for _, r := range recs {
		switch r.T {
		case RecordJob:
			if r.Spec == nil {
				continue // damaged but decodable line; skip defensively
			}
			c.admitLocked(r.Job, *r.Spec)
		case RecordPoint:
			j := c.jobs[r.Job]
			if j == nil || r.Point < 0 || r.Point >= len(j.points) {
				continue
			}
			p := j.points[r.Point]
			if p.state == pointDone {
				continue
			}
			p.state = pointDone
			p.row, p.status, p.attempts, p.failed = r.Row, r.Status, r.Attempts, r.Failed
			j.done++
			if r.Failed {
				j.failed++
			}
		}
	}
	return c, nil
}

// Skipped returns the WAL lines dropped at open (torn tail).
func (c *Coordinator) Skipped() int { return c.wal.Skipped() }

// Close releases the WAL.  In-memory state stays readable but further
// mutations fail.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return c.wal.Close()
}

// nextIDLocked mints a sequential ID with the given prefix, skipping
// over IDs already taken by WAL replay.
func (c *Coordinator) nextIDLocked(prefix string) string {
	for {
		c.seq++
		id := fmt.Sprintf("%s%d", prefix, c.seq)
		if _, taken := c.jobs[id]; !taken {
			return id
		}
	}
}

// admitLocked materializes a job's points.  Fingerprints are derived
// once here; a rate whose options cannot fingerprint (should be
// excluded by Validate) simply opts out of store/singleflight dedup.
func (c *Coordinator) admitLocked(id string, spec Spec) *job {
	rates := spec.Rates()
	j := &job{id: id, spec: spec, points: make([]*point, len(rates))}
	for i, rate := range rates {
		p := &point{rate: rate}
		if key, err := spec.Fingerprint(rate); err == nil {
			p.key, p.keyOK = key, true
		}
		j.points[i] = p
	}
	c.jobs[id] = j
	c.order = append(c.order, id)
	return j
}

// SubmitJob validates and admits a sweep job, journaling it before the
// ID is revealed: an acknowledged job survives any crash.
func (c *Coordinator) SubmitJob(spec Spec) (string, int, error) {
	if err := spec.Validate(); err != nil {
		return "", 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", 0, fmt.Errorf("sweepsvc: coordinator closed")
	}
	id := c.nextIDLocked("j")
	if err := c.wal.Append(Record{T: RecordJob, Job: id, Spec: &spec}); err != nil {
		return "", 0, err
	}
	j := c.admitLocked(id, spec)
	return id, len(j.points), nil
}

// expireLocked requeues every lease whose TTL lapsed at or before now
// (a lease expiring exactly now is lapsed: ties between expiry and
// renewal go to expiry — see RenewLeases).
func (c *Coordinator) expireLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(c.leases, id)
		j := c.jobs[l.jobID]
		p := j.points[l.point]
		if p.state == pointLeased && p.leaseID == id {
			p.state = pointPending
			p.leaseID = ""
			if p.keyOK && c.inflight[p.key] == id {
				delete(c.inflight, p.key)
			}
			c.counters.requeued.Inc()
		}
		c.counters.expired.Inc()
		if c.hooks != nil && c.hooks.LeaseExpired != nil {
			c.hooks.LeaseExpired(l.jobID, l.point, l.worker)
		}
	}
}

// ExpireLeases runs one expiry sweep immediately — the server's ticker
// calls it so leases lapse even while no worker is talking to us.
func (c *Coordinator) ExpireLeases() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.opts.Clock())
}

// AcquireLeases grants up to max work units to worker.  Pending points
// whose fingerprint is already in the result store are completed
// inline (no lease, no simulation); points whose fingerprint is
// in-flight under another lease are held back — singleflight — and
// completed when that execution reports.  Jobs are served in admission
// order, points in rate order, so a lone worker processes a sweep in
// exactly the serial order.
func (c *Coordinator) AcquireLeases(worker string, max int) ([]Lease, error) {
	if max < 1 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("sweepsvc: coordinator closed")
	}
	now := c.opts.Clock()
	c.expireLocked(now)
	var out []Lease
	for _, jobID := range c.order {
		j := c.jobs[jobID]
		for i, p := range j.points {
			if len(out) >= max {
				return out, nil
			}
			if p.state != pointPending {
				continue
			}
			if p.keyOK {
				if res, ok := StoreLookup(c.opts.Store, p.key); ok {
					c.completePointLocked(j, i, Completion{
						Job: jobID, Point: i,
						Row:    RenderRow(p.rate, j.spec.Domains, res, "ok"),
						Status: "ok", Attempts: 1,
					})
					c.counters.storeHits.Inc()
					continue
				}
				if _, busy := c.inflight[p.key]; busy {
					continue // singleflight: ride the in-flight execution
				}
			}
			id := fmt.Sprintf("l%d.%d-%s", c.epoch, func() int64 { c.seq++; return c.seq }(), worker)
			l := &lease{id: id, worker: worker, jobID: jobID, point: i, expires: now.Add(c.opts.LeaseTTL)}
			c.leases[id] = l
			p.state = pointLeased
			p.leaseID = id
			if p.keyOK {
				c.inflight[p.key] = id
			}
			c.counters.granted.Inc()
			if c.hooks != nil && c.hooks.LeaseGranted != nil {
				c.hooks.LeaseGranted(jobID, i, worker)
			}
			out = append(out, Lease{
				ID: id, Job: jobID, Point: i, Rate: p.rate, Spec: j.spec,
				TTLMS: c.opts.LeaseTTL.Milliseconds(),
			})
		}
	}
	return out, nil
}

// RenewLeases extends the TTL of the given leases and reports which of
// them are no longer held (expired and possibly re-leased): the worker
// should stop counting on those.
//
// A renewal arriving in the same tick as expiry — the worker's
// heartbeat lands at exactly TTL, whether the lapse is noticed lazily
// here or by the server's ticker — resolves deterministically in
// expiry's favor: the sweep runs before the renewal is considered, so
// the renewal comes back lost instead of resurrecting a lease whose
// point may already be re-leased to another worker.  Two workers can
// therefore never hold the same lease.
func (c *Coordinator) RenewLeases(worker string, ids []string) (lost []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		// Every lease dies with this incarnation; reporting them lost now
		// beats letting the worker heartbeat IDs the next incarnation
		// will never honor.
		return append(lost, ids...)
	}
	now := c.opts.Clock()
	c.expireLocked(now)
	for _, id := range ids {
		l, ok := c.leases[id]
		if !ok || l.worker != worker {
			lost = append(lost, id)
			continue
		}
		// Stale-binding guard: extend a lease only while its point still
		// acknowledges it.  A lease record whose point moved on (done, or
		// re-leased under a newer ID) is a zombie — renewing it would let
		// a second worker believe it holds live work.
		j := c.jobs[l.jobID]
		if j == nil || l.point < 0 || l.point >= len(j.points) ||
			j.points[l.point].state != pointLeased || j.points[l.point].leaseID != id {
			delete(c.leases, id)
			lost = append(lost, id)
			continue
		}
		l.expires = now.Add(c.opts.LeaseTTL)
		c.counters.renewed.Inc()
	}
	return lost
}

// ReleaseLeases returns unstarted leases to the pending pool — the
// graceful half of a worker drain.
func (c *Coordinator) ReleaseLeases(worker string, ids []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range ids {
		l, ok := c.leases[id]
		if !ok || l.worker != worker {
			continue
		}
		delete(c.leases, id)
		j := c.jobs[l.jobID]
		p := j.points[l.point]
		if p.state == pointLeased && p.leaseID == id {
			p.state = pointPending
			p.leaseID = ""
			if p.keyOK && c.inflight[p.key] == id {
				delete(c.inflight, p.key)
			}
			c.counters.requeued.Inc()
		}
	}
}

// CompletePoint accepts one finished point.  Completions are
// idempotent per point: the first report wins (journaled before it is
// acknowledged), any later one — a worker that lost its lease mid-run,
// a retransmitted report after a coordinator bounce — is dropped and
// counted.  A completion without a live lease is still accepted when
// the point is open: after a bounce the lease table is empty, and
// discarding the finished work would violate the zero-lost guarantee.
func (c *Coordinator) CompletePoint(comp Completion) (accepted bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false, fmt.Errorf("sweepsvc: coordinator closed")
	}
	c.expireLocked(c.opts.Clock())
	j := c.jobs[comp.Job]
	if j == nil {
		return false, fmt.Errorf("sweepsvc: unknown job %q", comp.Job)
	}
	if comp.Point < 0 || comp.Point >= len(j.points) {
		return false, fmt.Errorf("sweepsvc: job %s has no point %d", comp.Job, comp.Point)
	}
	p := j.points[comp.Point]
	if p.state == pointDone {
		c.counters.duplicates.Inc()
		if c.hooks != nil && c.hooks.PointCompleted != nil {
			c.hooks.PointCompleted(comp.Job, comp.Point, true)
		}
		return false, nil
	}
	if err := c.completePointLocked(j, comp.Point, comp); err != nil {
		return false, err
	}
	// Feed the shared store so singleflight waiters and future jobs hit
	// it; the write is atomic+fsynced inside simcache.
	if len(comp.Result) > 0 && p.keyOK && c.opts.Store != nil && !comp.Failed {
		c.opts.Store.Put(p.key, comp.Result)
	}
	return true, nil
}

// completePointLocked journals and applies one completion, then
// resolves every singleflight waiter sharing the fingerprint.  Callers
// hold c.mu and have verified the point is open.
func (c *Coordinator) completePointLocked(j *job, idx int, comp Completion) error {
	p := j.points[idx]
	rec := Record{
		T: RecordPoint, Job: j.id, Point: idx,
		Row: comp.Row, Status: comp.Status, Attempts: comp.Attempts, Failed: comp.Failed,
	}
	if err := c.wal.Append(rec); err != nil {
		return err
	}
	if p.state == pointLeased {
		delete(c.leases, p.leaseID)
	}
	if p.keyOK {
		delete(c.inflight, p.key)
	}
	p.state = pointDone
	p.leaseID = ""
	p.row, p.status, p.attempts, p.failed = comp.Row, comp.Status, comp.Attempts, comp.Failed
	j.done++
	if comp.Failed {
		j.failed++
	}
	c.counters.completed.Inc()
	if c.hooks != nil && c.hooks.PointCompleted != nil {
		c.hooks.PointCompleted(j.id, idx, false)
	}
	// Singleflight resolution: identical pending points (other jobs)
	// complete from this execution's row.  Same fingerprint ⇒ same
	// options ⇒ same rate and result, so the row transfers verbatim.
	if p.keyOK && !comp.Failed {
		for _, otherID := range c.order {
			oj := c.jobs[otherID]
			for oi, op := range oj.points {
				if op.state != pointPending || !op.keyOK || op.key != p.key {
					continue
				}
				c.counters.merged.Inc()
				if err := c.completePointLocked(oj, oi, Completion{
					Job: otherID, Point: oi,
					Row: comp.Row, Status: comp.Status, Attempts: comp.Attempts,
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Status reports a job's progress.
func (c *Coordinator) Status(jobID string) (JobStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[jobID]
	if j == nil {
		return JobStatus{}, fmt.Errorf("sweepsvc: unknown job %q", jobID)
	}
	leased := 0
	for _, p := range j.points {
		if p.state == pointLeased {
			leased++
		}
	}
	return JobStatus{
		Job: j.id, Total: len(j.points), Done: j.done, Failed: j.failed,
		Leased: leased, Complete: j.complete(),
	}, nil
}

// Rows reports every point of jobID in rate order with its completion
// state — the streaming complement of CSV, readable while the job is
// still running so clients can print finished rows incrementally.
func (c *Coordinator) Rows(jobID string) ([]PointRow, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[jobID]
	if j == nil {
		return nil, fmt.Errorf("sweepsvc: unknown job %q", jobID)
	}
	out := make([]PointRow, len(j.points))
	for i, p := range j.points {
		r := PointRow{Point: i, Rate: p.rate, Done: p.state == pointDone, Failed: p.failed}
		if p.keyOK {
			r.Fingerprint = p.key.String()
		}
		if r.Done {
			r.Row = p.row
		}
		out[i] = r
	}
	return out, nil
}

// Jobs lists admitted job IDs in admission order.
func (c *Coordinator) Jobs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.order...)
	return out
}

// CSV assembles a complete job's output: the shared header plus one
// row per point in rate order — byte-identical to what a serial
// cmd/sweep with the same spec prints on stdout.  It fails while any
// point is still open.
func (c *Coordinator) CSV(jobID string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[jobID]
	if j == nil {
		return "", fmt.Errorf("sweepsvc: unknown job %q", jobID)
	}
	if !j.complete() {
		return "", fmt.Errorf("sweepsvc: job %s is %d/%d complete", jobID, j.done, len(j.points))
	}
	var b strings.Builder
	b.WriteString(CSVHeader)
	b.WriteByte('\n')
	for _, p := range j.points {
		b.WriteString(p.row)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// LeaseSnapshot returns the live leases sorted by ID — introspection
// for /progress-style endpoints and tests.
func (c *Coordinator) LeaseSnapshot() []Lease {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Lease, 0, len(c.leases))
	for _, l := range c.leases {
		j := c.jobs[l.jobID]
		out = append(out, Lease{
			ID: l.id, Job: l.jobID, Point: l.point, Rate: j.points[l.point].rate,
			TTLMS: time.Until(l.expires).Milliseconds(),
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
