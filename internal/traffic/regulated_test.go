package traffic

import (
	"fmt"
	"testing"

	"surfbless/internal/geom"
	"surfbless/internal/packet"
)

func TestCornerPattern(t *testing.T) {
	m := geom.NewMesh(4, 4)
	g := New(m, Corner, []Source{{Rate: 1, Burst: 1, Class: packet.Ctrl, VNet: -1}}, 1)
	f := newRecorder()
	run(g, f, 200)
	if len(f.pkts) == 0 {
		t.Fatal("corner pattern generated nothing")
	}
	want := geom.Coord{X: 3, Y: 3}
	for _, p := range f.pkts {
		if p.Src != (geom.Coord{}) || p.Dst != want {
			t.Fatalf("corner packet %v→%v, want (0,0)→%v", p.Src, p.Dst, want)
		}
	}
	for node, pkts := range f.byNode {
		if node != 0 && len(pkts) > 0 {
			t.Errorf("node %d generated %d packets; only node 0 may", node, len(pkts))
		}
	}
}

func TestNegativeBurstPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative burst accepted")
		}
	}()
	New(geom.NewMesh(4, 4), Corner, []Source{{Rate: 0.1, Burst: -1}}, 1)
}

// The arrival-curve contract the analytical engine depends on: a
// regulated stream never exceeds Burst + ⌊Rate·τ⌋ packets in any
// τ-cycle window, for every window position — checked by sliding a
// window over the emission times of each (node, domain) stream.
func TestTokenBucketArrivalCurve(t *testing.T) {
	for _, tc := range []struct {
		name  string
		rate  float64
		burst int
		onoff bool
	}{
		{"thinned burst 1", 0.3, 1, false},
		{"thinned burst 4", 0.25, 4, false},
		{"greedy burst 1", 0.3, 1, true},
		{"greedy burst 3", 0.1, 3, true},
	} {
		m := geom.NewMesh(2, 2)
		g := New(m, BitComplement, []Source{{Rate: tc.rate, Burst: tc.burst, Class: packet.Ctrl, VNet: -1}}, 7)
		f := newRecorder()
		const cycles = 3000
		run(g, f, cycles)
		for node, pkts := range f.byNode {
			times := make([]int64, len(pkts))
			for i, p := range pkts {
				times[i] = p.CreatedAt
			}
			for _, tau := range []int64{1, 7, 50, 400} {
				lo := 0
				for hi := range times {
					for times[hi]-times[lo] >= tau {
						lo++
					}
					if in := int64(hi - lo + 1); in > int64(tc.burst)+int64(tc.rate*float64(tau)) {
						t.Fatalf("%s node %d: %d arrivals in a %d-cycle window, curve allows %d",
							tc.name, node, in, tau, int64(tc.burst)+int64(tc.rate*float64(tau)))
					}
				}
			}
		}
	}
}

// Greedy streams fire their whole bucket back to back: with a full
// initial bucket of B tokens, the first B cycles each emit a packet,
// then the stream stays silent until a full token accumulates.
func TestOnOffFiresBurstsBackToBack(t *testing.T) {
	const burst = 3
	const rate = 0.001
	m := geom.NewMesh(4, 4)
	g := New(m, Corner, []Source{{Rate: rate, Burst: burst, OnOff: true, Class: packet.Ctrl, VNet: -1}}, 1)
	f := newRecorder()
	run(g, f, 500)
	pkts := f.byNode[0]
	if len(pkts) != burst {
		t.Fatalf("got %d packets in 500 cycles, want exactly the initial burst of %d", len(pkts), burst)
	}
	for i, p := range pkts {
		if p.CreatedAt != int64(i) {
			t.Errorf("burst packet %d created at %d, want back-to-back at cycle %d", i, p.CreatedAt, i)
		}
	}
	// After ≈1/rate more cycles one token has refilled and exactly one
	// more packet fires.
	run2 := newRecorder()
	g2 := New(m, Corner, []Source{{Rate: rate, Burst: burst, OnOff: true, Class: packet.Ctrl, VNet: -1}}, 1)
	run(g2, run2, 500+int64(1/rate))
	if got := len(run2.byNode[0]); got != burst+1 {
		t.Errorf("after one refill period: %d packets, want %d", got, burst+1)
	}
}

// Regulation must not change which destinations a stream picks: the
// Bernoulli thinning consumes the same RNG stream, and bucket state is
// per (node, domain), so domains stay independent.
func TestRegulatedStreamsStayIndependent(t *testing.T) {
	m := geom.NewMesh(4, 4)
	quiet := []Source{
		{Rate: 0.05, Burst: 2, Class: packet.Ctrl, VNet: -1},
		{Rate: 0},
	}
	loud := []Source{
		{Rate: 0.05, Burst: 2, Class: packet.Ctrl, VNet: -1},
		{Rate: 0.4, Burst: 1, OnOff: true, Class: packet.Data, VNet: -1},
	}
	a, b := newRecorder(), newRecorder()
	run(New(m, Transpose, quiet, 99), a, 2000)
	run(New(m, Transpose, loud, 99), b, 2000)
	filter := func(ps []*packet.Packet) []string {
		var ids []string
		for _, p := range ps {
			if p.Domain == 0 {
				ids = append(ids, fmt.Sprintf("%d@%s", p.CreatedAt, p))
			}
		}
		return ids
	}
	da, db := filter(a.pkts), filter(b.pkts)
	if len(da) != len(db) {
		t.Fatalf("domain 0 population changed: %d vs %d packets", len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("domain 0 packet %d differs: %s vs %s", i, da[i], db[i])
		}
	}
}
