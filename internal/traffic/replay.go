package traffic

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"surfbless/internal/geom"
	"surfbless/internal/network"
	"surfbless/internal/packet"
)

// Replayer injects a previously recorded packet population — the
// "created" lines of an internal/trace CSV — into another fabric at the
// recorded cycles.  Record a run once, then replay the identical
// workload onto a different network model: the deterministic
// counterpart of the per-domain Bernoulli generators.
type Replayer struct {
	events []replayEvent
	pos    int

	Offered int64 // packets injected so far
	Refused int64 // offers rejected by NI backpressure (dropped)
}

type replayEvent struct {
	cycle  int64
	src    geom.Coord
	dst    geom.Coord
	id     uint64
	domain int
	class  packet.Class
}

// NewReplayer parses a trace (see internal/trace: lines of
// "cycle,kind,packet_id,domain,srcX:srcY,dstX:dstY,hops,deflections"),
// keeping the created events.  Lines of other kinds are skipped; a
// header line is tolerated.  Events must be ordered by cycle (traces
// are written in simulation order).
func NewReplayer(r io.Reader, mesh geom.Mesh, classOf func(domain int) packet.Class) (*Replayer, error) {
	if classOf == nil {
		classOf = func(int) packet.Class { return packet.Ctrl }
	}
	rp := &Replayer{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "cycle,") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) != 8 {
			return nil, fmt.Errorf("traffic: trace line %d has %d fields, want 8", lineNo, len(f))
		}
		if f[1] != "created" {
			continue
		}
		var ev replayEvent
		if _, err := fmt.Sscanf(f[0], "%d", &ev.cycle); err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: bad cycle %q", lineNo, f[0])
		}
		if _, err := fmt.Sscanf(f[2], "%d", &ev.id); err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: bad packet id %q", lineNo, f[2])
		}
		if _, err := fmt.Sscanf(f[3], "%d", &ev.domain); err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: bad domain %q", lineNo, f[3])
		}
		var err error
		if ev.src, err = parseCoord(f[4]); err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: %w", lineNo, err)
		}
		if ev.dst, err = parseCoord(f[5]); err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: %w", lineNo, err)
		}
		if !mesh.Contains(ev.src) || !mesh.Contains(ev.dst) {
			return nil, fmt.Errorf("traffic: trace line %d: %v→%v outside the %dx%d mesh",
				lineNo, ev.src, ev.dst, mesh.Width, mesh.Height)
		}
		ev.class = classOf(ev.domain)
		if n := len(rp.events); n > 0 && rp.events[n-1].cycle > ev.cycle {
			return nil, fmt.Errorf("traffic: trace line %d: cycles out of order", lineNo)
		}
		rp.events = append(rp.events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traffic: %w", err)
	}
	return rp, nil
}

func parseCoord(s string) (geom.Coord, error) {
	var c geom.Coord
	if _, err := fmt.Sscanf(s, "%d:%d", &c.X, &c.Y); err != nil {
		return c, fmt.Errorf("bad coordinate %q", s)
	}
	return c, nil
}

// Events returns the number of recorded creations.
func (rp *Replayer) Events() int { return len(rp.events) }

// Done reports whether every recorded packet has been offered.
func (rp *Replayer) Done() bool { return rp.pos >= len(rp.events) }

// Tick offers every packet recorded for cycle now.  Offers the target
// fabric refuses are counted and dropped (replay is open-loop, like the
// generators).
func (rp *Replayer) Tick(f network.Fabric, now int64, mesh geom.Mesh) {
	for rp.pos < len(rp.events) && rp.events[rp.pos].cycle == now {
		ev := rp.events[rp.pos]
		rp.pos++
		p := packet.New(ev.id, ev.src, ev.dst, ev.domain, ev.class, now)
		p.VNet = -1
		if f.Inject(mesh.ID(ev.src), p, now) {
			rp.Offered++
		} else {
			rp.Refused++
		}
	}
	// Skip any events recorded before now (the caller jumped cycles).
	for rp.pos < len(rp.events) && rp.events[rp.pos].cycle < now {
		rp.pos++
		rp.Refused++
	}
}
