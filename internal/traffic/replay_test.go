package traffic

import (
	"strings"
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/geom"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/router/bless"
	"surfbless/internal/router/surfbless"
	"surfbless/internal/stats"
	"surfbless/internal/trace"
)

func TestReplayerParses(t *testing.T) {
	in := trace.Header() + "\n" +
		"3,created,42,1,0:0,3:2,0,0\n" +
		"3,injected,42,1,0:0,3:2,0,0\n" + // skipped: not a creation
		"5,created,43,0,7:7,1:1,0,0\n"
	rp, err := NewReplayer(strings.NewReader(in), geom.NewMesh(8, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Events() != 2 {
		t.Fatalf("Events = %d, want 2", rp.Events())
	}
}

func TestReplayerRejects(t *testing.T) {
	mesh := geom.NewMesh(4, 4)
	cases := map[string]string{
		"field count":  "1,created,1,0,0:0\n",
		"bad cycle":    "x,created,1,0,0:0,1:1,0,0\n",
		"bad coord":    "1,created,1,0,zero,1:1,0,0\n",
		"off mesh":     "1,created,1,0,0:0,9:9,0,0\n",
		"out of order": "5,created,1,0,0:0,1:1,0,0\n3,created,2,0,0:0,1:1,0,0\n",
	}
	for name, in := range cases {
		if _, err := NewReplayer(strings.NewReader(in), mesh, nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// The record/replay loop: trace a BLESS run, replay the identical
// population into an SB fabric, and check every packet is delivered.
func TestRecordReplayRoundTrip(t *testing.T) {
	// Record.
	recCfg := config.Default(config.BLESS)
	recCfg.Domains = 2
	recCol := stats.NewCollector(2, 0, 0)
	var buf strings.Builder
	tw := trace.New(&buf)
	recCol.SetTracer(tw.Tracer())
	recMeter := power.NewMeter(recCfg, power.Default45nm())
	recFab, err := bless.New(recCfg, nil, recCol, recMeter)
	if err != nil {
		t.Fatal(err)
	}
	gen := New(recCfg.Mesh(), UniformRandom, []Source{
		{Rate: 0.03, Class: packet.Ctrl, VNet: -1},
		{Rate: 0.03, Class: packet.Ctrl, VNet: -1},
	}, 31)
	now := int64(0)
	for ; now < 400; now++ {
		gen.Tick(recFab, now)
		recFab.Step(now)
	}
	for ; recFab.InFlight() > 0; now++ {
		recFab.Step(now)
	}
	tw.Flush()

	// Replay into SB.
	rp, err := NewReplayer(strings.NewReader(buf.String()), recCfg.Mesh(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if int64(rp.Events()) != recCol.AllCreated {
		t.Fatalf("replayer parsed %d creations, recorder made %d", rp.Events(), recCol.AllCreated)
	}
	sbCfg := config.Default(config.SB)
	sbCfg.Domains = 2
	sbCol := stats.NewCollector(2, 0, 0)
	sbMeter := power.NewMeter(sbCfg, power.Default45nm())
	sbFab, err := surfbless.New(sbCfg, nil, nil, sbCol, sbMeter)
	if err != nil {
		t.Fatal(err)
	}
	mesh := sbCfg.Mesh()
	for now = 0; !rp.Done() || sbFab.InFlight() > 0; now++ {
		rp.Tick(sbFab, now, mesh)
		sbFab.Step(now)
		if now > 100000 {
			t.Fatal("replay never drained")
		}
	}
	if rp.Refused != 0 {
		t.Errorf("%d replayed offers refused at this load", rp.Refused)
	}
	if sbCol.AllEjected != recCol.AllCreated {
		t.Errorf("SB delivered %d of %d replayed packets", sbCol.AllEjected, recCol.AllCreated)
	}
	// The populations are identical packet-for-packet, so per-domain
	// counts must match the recording.
	for d := 0; d < 2; d++ {
		if sbCol.Domain(d).Ejected != recCol.Domain(d).Ejected {
			t.Errorf("domain %d: replay delivered %d, recording %d",
				d, sbCol.Domain(d).Ejected, recCol.Domain(d).Ejected)
		}
	}
}
