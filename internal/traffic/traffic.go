// Package traffic provides the open-loop synthetic workload generators
// of §5.1: per-node, per-domain Bernoulli injection processes over the
// classic patterns of Dally & Towles [12].  The paper's experiments use
// uniform random traffic; the other patterns are provided for the
// confinement stress tests and ablations.
//
// Determinism contract: each (node, domain) pair owns an independent
// RNG stream and an independent packet-ID sequence, so the complete
// packet population of one domain — IDs, creation times, destinations —
// is bit-identical regardless of what any other domain does.  The
// headline non-interference test relies on this.
package traffic

import (
	"fmt"
	"math/rand"

	"surfbless/internal/geom"
	"surfbless/internal/network"
	"surfbless/internal/packet"
)

// Pattern selects the destination distribution.
type Pattern int

// Destination patterns.
const (
	// UniformRandom sends each packet to a destination drawn uniformly
	// from all other nodes (the paper's pattern).
	UniformRandom Pattern = iota
	// Transpose sends (x,y) → (y,x); diagonal nodes generate nothing.
	Transpose
	// BitComplement sends node i → (N−1)−i.
	BitComplement
	// Hotspot sends 20% of packets to node 0 and the rest uniformly.
	Hotspot
	// Corner sends packets from node (0,0) to the opposite corner
	// (W−1,H−1); every other node generates nothing.  The single
	// deterministic flow makes it the zero-contention scenario the
	// wcta conformance oracle uses to check bound tightness.
	Corner
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case UniformRandom:
		return "uniform"
	case Transpose:
		return "transpose"
	case BitComplement:
		return "bitcomp"
	case Hotspot:
		return "hotspot"
	case Corner:
		return "corner"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

const hotspotFraction = 0.2

// Source describes one domain's injection process.
//
// Burst and OnOff select regulated variants whose offered load obeys a
// token-bucket arrival curve — the property the analytical worst-case
// engine (internal/wcta) needs to bound in-flight populations.  Both
// fields serialize with omitempty so the zero value (plain Bernoulli)
// keeps pre-existing cache fingerprints byte-identical.
type Source struct {
	Rate  float64      // packets/node/cycle, Bernoulli per node per cycle
	Class packet.Class // packet class injected by this domain
	VNet  int          // virtual network stamped on packets; -1 if unused

	// Burst, when ≥1, regulates the stream with a per-(node,domain)
	// token bucket of that depth refilled at Rate tokens/cycle: every
	// window of τ cycles offers at most Burst + ⌊Rate·τ⌋ packets.
	// 0 leaves the stream an unregulated Bernoulli process.
	Burst int `json:",omitempty"`
	// OnOff, with Burst ≥1, switches the regulated stream from
	// Bernoulli-thinned to greedy: the stream emits whenever a full
	// token is available, producing back-to-back bursts of Burst
	// packets separated by ≈Burst/Rate idle cycles.  Ignored when
	// Burst is 0.
	OnOff bool `json:",omitempty"`
}

// Generator drives one fabric with per-domain Bernoulli traffic.
type Generator struct {
	mesh    geom.Mesh
	pattern Pattern
	sources []Source
	rngs    [][]*rand.Rand // [node][domain]
	seqs    [][]uint64     // [node][domain] per-stream packet sequence
	tokens  [][]float64    // [node][domain] token-bucket fill (Burst ≥1 streams)
	fl      *packet.FreeList
}

// New returns a generator for the given mesh and per-domain sources.
// Seed fixes every stream; equal seeds give bit-identical populations.
func New(mesh geom.Mesh, pattern Pattern, sources []Source, seed int64) *Generator {
	if len(sources) == 0 {
		panic("traffic: no sources")
	}
	for d, s := range sources {
		if s.Rate < 0 || s.Rate > 1 {
			panic(fmt.Sprintf("traffic: domain %d rate %g outside [0,1]", d, s.Rate))
		}
		if s.Burst < 0 {
			panic(fmt.Sprintf("traffic: domain %d burst %d negative", d, s.Burst))
		}
	}
	g := &Generator{
		mesh:    mesh,
		pattern: pattern,
		sources: sources,
		rngs:    make([][]*rand.Rand, mesh.Nodes()),
		seqs:    make([][]uint64, mesh.Nodes()),
		tokens:  make([][]float64, mesh.Nodes()),
	}
	for n := 0; n < mesh.Nodes(); n++ {
		g.rngs[n] = make([]*rand.Rand, len(sources))
		g.seqs[n] = make([]uint64, len(sources))
		g.tokens[n] = make([]float64, len(sources))
		for d := range sources {
			// Mix (seed, node, domain) so streams are independent.
			s := mix(uint64(seed), uint64(n)<<20|uint64(d))
			g.rngs[n][d] = rand.New(rand.NewSource(int64(s)))
			// Regulated buckets start full, so the very first window
			// already honours the Burst + ⌊Rate·τ⌋ curve.
			g.tokens[n][d] = float64(sources[d].Burst)
		}
	}
	return g
}

func mix(a, b uint64) uint64 {
	z := a*0x9E3779B97F4A7C15 + b + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// PacketID encodes (node, domain, seq) so that a stream's IDs do not
// depend on any other stream's activity.
func PacketID(node, domain int, seq uint64) uint64 {
	return uint64(node)<<48 | uint64(domain)<<40 | seq
}

// Tick generates this cycle's offers for every node and domain and
// injects them into the fabric.  Offers refused by a full NI queue are
// dropped (open-loop load); the fabric records them as refused.
func (g *Generator) Tick(f network.Fabric, now int64) {
	for n := 0; n < g.mesh.Nodes(); n++ {
		src := g.mesh.CoordOf(n)
		for d, s := range g.sources {
			if s.Rate == 0 {
				continue
			}
			rng := g.rngs[n][d]
			if s.Burst > 0 {
				// Token-bucket regulation: refill at Rate/cycle up to
				// Burst, emit only on a full token.  The Bernoulli draw
				// still thins emissions unless the stream is greedy
				// (OnOff), so arrivals in any τ-cycle window never
				// exceed Burst + ⌊Rate·τ⌋ either way.
				tk := &g.tokens[n][d]
				if *tk < float64(s.Burst) {
					*tk += s.Rate
					if *tk > float64(s.Burst) {
						*tk = float64(s.Burst)
					}
				}
				if *tk < 1 {
					continue
				}
				if !s.OnOff && rng.Float64() >= s.Rate {
					continue
				}
			} else if rng.Float64() >= s.Rate {
				continue
			}
			dst, ok := g.destination(src, rng)
			if !ok {
				continue
			}
			if s.Burst > 0 {
				g.tokens[n][d]--
			}
			var p *packet.Packet
			if g.fl != nil {
				p = g.fl.New(PacketID(n, d, g.seqs[n][d]), src, dst, d, s.Class, now)
			} else {
				p = packet.New(PacketID(n, d, g.seqs[n][d]), src, dst, d, s.Class, now)
			}
			g.seqs[n][d]++
			p.VNet = s.VNet
			f.Inject(n, p, now)
		}
	}
}

// destination draws a destination for the configured pattern.  ok is
// false when the pattern gives this source no destination (transpose
// diagonal).
func (g *Generator) destination(src geom.Coord, rng *rand.Rand) (geom.Coord, bool) {
	nodes := g.mesh.Nodes()
	switch g.pattern {
	case Transpose:
		dst := geom.Coord{X: src.Y, Y: src.X}
		if dst == src || !g.mesh.Contains(dst) {
			return geom.Coord{}, false
		}
		return dst, true
	case BitComplement:
		id := g.mesh.ID(src)
		dst := g.mesh.CoordOf(nodes - 1 - id)
		if dst == src {
			return geom.Coord{}, false
		}
		return dst, true
	case Corner:
		if src != (geom.Coord{}) {
			return geom.Coord{}, false
		}
		return geom.Coord{X: g.mesh.Width - 1, Y: g.mesh.Height - 1}, true
	case Hotspot:
		if rng.Float64() < hotspotFraction && g.mesh.ID(src) != 0 {
			return g.mesh.CoordOf(0), true
		}
		fallthrough
	default: // UniformRandom
		id := g.mesh.ID(src)
		d := rng.Intn(nodes - 1)
		if d >= id {
			d++
		}
		return g.mesh.CoordOf(d), true
	}
}

// SetFreeList makes Tick draw packets from fl instead of the heap (nil
// restores plain allocation).  Recycling is observably equivalent to
// fresh allocation — FreeList.New resets every field — so the packet
// population is bit-identical either way.
func (g *Generator) SetFreeList(fl *packet.FreeList) { g.fl = fl }

// Offered returns how many packets the (node, domain) stream has
// generated so far.
func (g *Generator) Offered(node, domain int) uint64 { return g.seqs[node][domain] }
