package traffic

import (
	"testing"

	"surfbless/internal/geom"
	"surfbless/internal/packet"
)

// recorder is a minimal network.Fabric capturing injected packets.
type recorder struct {
	pkts    []*packet.Packet
	byNode  map[int][]*packet.Packet
	refuse  bool
	inCount int
}

func newRecorder() *recorder { return &recorder{byNode: map[int][]*packet.Packet{}} }

func (r *recorder) Inject(node int, p *packet.Packet, now int64) bool {
	if r.refuse {
		return false
	}
	r.pkts = append(r.pkts, p)
	r.byNode[node] = append(r.byNode[node], p)
	r.inCount++
	return true
}
func (r *recorder) Step(now int64) {}
func (r *recorder) InFlight() int  { return r.inCount }
func (r *recorder) Audit() error   { return nil }

func run(g *Generator, f *recorder, cycles int64) {
	for now := int64(0); now < cycles; now++ {
		g.Tick(f, now)
	}
}

func TestNewPanics(t *testing.T) {
	m := geom.NewMesh(4, 4)
	for name, f := range map[string]func(){
		"no sources": func() { New(m, UniformRandom, nil, 1) },
		"bad rate":   func() { New(m, UniformRandom, []Source{{Rate: 1.5}}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRateIsApproximatelyRespected(t *testing.T) {
	m := geom.NewMesh(8, 8)
	g := New(m, UniformRandom, []Source{{Rate: 0.1, Class: packet.Ctrl, VNet: -1}}, 3)
	f := newRecorder()
	const cycles = 2000
	run(g, f, cycles)
	want := 0.1 * float64(m.Nodes()) * cycles
	got := float64(len(f.pkts))
	if got < 0.9*want || got > 1.1*want {
		t.Errorf("generated %g packets, want ≈%g", got, want)
	}
}

func TestZeroRateGeneratesNothing(t *testing.T) {
	m := geom.NewMesh(4, 4)
	g := New(m, UniformRandom, []Source{{Rate: 0}}, 3)
	f := newRecorder()
	run(g, f, 500)
	if len(f.pkts) != 0 {
		t.Errorf("zero-rate source generated %d packets", len(f.pkts))
	}
}

func TestUniformNeverSelfAddressed(t *testing.T) {
	m := geom.NewMesh(4, 4)
	g := New(m, UniformRandom, []Source{{Rate: 0.5, Class: packet.Ctrl}}, 9)
	f := newRecorder()
	run(g, f, 200)
	for _, p := range f.pkts {
		if p.Src == p.Dst {
			t.Fatalf("self-addressed packet %v", p)
		}
		if !m.Contains(p.Dst) {
			t.Fatalf("destination off mesh: %v", p)
		}
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	m := geom.NewMesh(4, 4)
	g := New(m, UniformRandom, []Source{{Rate: 1, Class: packet.Ctrl}}, 1)
	f := newRecorder()
	run(g, f, 500)
	seen := map[geom.Coord]bool{}
	for _, p := range f.byNode[0] {
		seen[p.Dst] = true
	}
	if len(seen) != m.Nodes()-1 {
		t.Errorf("node 0 reached %d destinations, want %d", len(seen), m.Nodes()-1)
	}
}

func TestTranspose(t *testing.T) {
	m := geom.NewMesh(4, 4)
	g := New(m, Transpose, []Source{{Rate: 1, Class: packet.Ctrl}}, 1)
	f := newRecorder()
	run(g, f, 10)
	for _, p := range f.pkts {
		if p.Dst.X != p.Src.Y || p.Dst.Y != p.Src.X {
			t.Fatalf("transpose sent %v→%v", p.Src, p.Dst)
		}
	}
	// Diagonal nodes stay silent.
	for _, p := range f.byNode[m.ID(geom.Coord{X: 2, Y: 2})] {
		t.Fatalf("diagonal node generated %v", p)
	}
}

func TestBitComplement(t *testing.T) {
	m := geom.NewMesh(4, 4)
	g := New(m, BitComplement, []Source{{Rate: 1, Class: packet.Ctrl}}, 1)
	f := newRecorder()
	run(g, f, 5)
	for _, p := range f.pkts {
		if m.ID(p.Dst) != m.Nodes()-1-m.ID(p.Src) {
			t.Fatalf("bit-complement sent %v→%v", p.Src, p.Dst)
		}
	}
}

func TestHotspotConcentration(t *testing.T) {
	m := geom.NewMesh(8, 8)
	g := New(m, Hotspot, []Source{{Rate: 0.5, Class: packet.Ctrl}}, 4)
	f := newRecorder()
	run(g, f, 500)
	hot := 0
	for _, p := range f.pkts {
		if m.ID(p.Dst) == 0 {
			hot++
		}
	}
	frac := float64(hot) / float64(len(f.pkts))
	// 20% directed + ~1.3% of the uniform remainder.
	if frac < 0.15 || frac < 1.0/float64(m.Nodes()) {
		t.Errorf("hotspot fraction %.3f too low", frac)
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{
		UniformRandom: "uniform", Transpose: "transpose",
		BitComplement: "bitcomp", Hotspot: "hotspot",
	} {
		if p.String() != want {
			t.Errorf("Pattern %d string = %q", p, p.String())
		}
	}
	if Pattern(99).String() != "Pattern(99)" {
		t.Error("unknown pattern string wrong")
	}
}

func TestPacketIDEncoding(t *testing.T) {
	id := PacketID(63, 8, 12345)
	if id != uint64(63)<<48|uint64(8)<<40|12345 {
		t.Errorf("PacketID = %x", id)
	}
	// IDs of distinct streams never collide for realistic sequences.
	if PacketID(1, 0, 0) == PacketID(0, 1, 0) {
		t.Error("stream IDs collide")
	}
}

func TestPacketFieldsStamped(t *testing.T) {
	m := geom.NewMesh(4, 4)
	g := New(m, UniformRandom, []Source{
		{Rate: 1, Class: packet.Data, VNet: 2},
	}, 1)
	f := newRecorder()
	g.Tick(f, 77)
	if len(f.pkts) == 0 {
		t.Fatal("rate-1 source generated nothing")
	}
	p := f.pkts[0]
	if p.CreatedAt != 77 || p.Class != packet.Data || p.Size != 5 || p.VNet != 2 || p.Domain != 0 {
		t.Errorf("packet fields wrong: %+v", p)
	}
}

// The determinism contract: a domain's population is bit-identical
// regardless of other domains' configuration.
func TestStreamIndependence(t *testing.T) {
	m := geom.NewMesh(8, 8)
	collect := func(otherRate float64) []*packet.Packet {
		g := New(m, UniformRandom, []Source{
			{Rate: 0.05, Class: packet.Ctrl},
			{Rate: otherRate, Class: packet.Ctrl},
		}, 42)
		f := newRecorder()
		run(g, f, 300)
		var dom0 []*packet.Packet
		for _, p := range f.pkts {
			if p.Domain == 0 {
				dom0 = append(dom0, p)
			}
		}
		return dom0
	}
	quiet := collect(0)
	noisy := collect(0.3)
	if len(quiet) != len(noisy) {
		t.Fatalf("domain-0 population size changed: %d vs %d", len(quiet), len(noisy))
	}
	for i := range quiet {
		a, b := quiet[i], noisy[i]
		if a.ID != b.ID || a.Src != b.Src || a.Dst != b.Dst || a.CreatedAt != b.CreatedAt {
			t.Fatalf("domain-0 packet %d differs: %v vs %v", i, a, b)
		}
	}
}

// Same seed ⇒ same population; different seed ⇒ different population.
func TestSeeding(t *testing.T) {
	m := geom.NewMesh(8, 8)
	gen := func(seed int64) []*packet.Packet {
		g := New(m, UniformRandom, []Source{{Rate: 0.1, Class: packet.Ctrl}}, seed)
		f := newRecorder()
		run(g, f, 100)
		return f.pkts
	}
	a, b := gen(5), gen(5)
	if len(a) != len(b) {
		t.Fatal("same seed, different population size")
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dst != b[i].Dst {
			t.Fatal("same seed, different packets")
		}
	}
	c := gen(6)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Dst != c[i].Dst || a[i].CreatedAt != c[i].CreatedAt {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical populations")
	}
}

// Refused offers do not advance delivery but do advance the stream, so
// backpressure on one run cannot desynchronize another run's stream.
func TestOfferedCounts(t *testing.T) {
	m := geom.NewMesh(4, 4)
	g := New(m, UniformRandom, []Source{{Rate: 1, Class: packet.Ctrl}}, 2)
	f := newRecorder()
	f.refuse = true
	run(g, f, 10)
	if len(f.pkts) != 0 {
		t.Error("refused offers recorded as injected")
	}
	if g.Offered(0, 0) != 10 {
		t.Errorf("Offered = %d, want 10 (streams advance despite refusal)", g.Offered(0, 0))
	}
}
