package cpu

import (
	"testing"

	"surfbless/internal/coherence"
)

func TestProfilesComplete(t *testing.T) {
	want := []string{"blackscholes", "bodytrack", "canneal", "dedup", "ferret",
		"fluidanimate", "swaptions", "vips", "x264"}
	ps := Profiles()
	if len(ps) != len(want) {
		t.Fatalf("%d profiles, want %d", len(ps), len(want))
	}
	for i, name := range want {
		if ps[i].Name != name {
			t.Errorf("profile %d = %q, want %q (paper order)", i, ps[i].Name, name)
		}
		if err := ps[i].Validate(); err != nil {
			t.Errorf("profile %q invalid: %v", name, err)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("canneal")
	if err != nil || p.Name != "canneal" {
		t.Errorf("ProfileByName(canneal) = %v, %v", p, err)
	}
	if _, err := ProfileByName("doom"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestProfileValidate(t *testing.T) {
	bad := []Profile{
		{},
		{Name: "x", MemRatio: 1.5, PrivateBlocks: 1, SharedBlocks: 1},
		{Name: "x", ReadFrac: -0.1, PrivateBlocks: 1, SharedBlocks: 1},
		{Name: "x", PrivateBlocks: 0, SharedBlocks: 1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

// A core with MemRatio 0 retires one instruction per cycle and finishes
// at exactly target−1 cycles after start.
func TestComputeBoundCoreTiming(t *testing.T) {
	l1 := coherence.NewL1(0, 1024, 16, 4, func(uint64) int { return 0 }, func(*coherence.Msg, int64) {})
	p := Profile{Name: "pure-compute", MemRatio: 0, ReadFrac: 1, PrivateBlocks: 1, SharedBlocks: 1}
	c := NewCore(0, p, 100, 1, l1)
	for now := int64(0); now < 200 && !c.Done(); now++ {
		c.Tick(now)
	}
	if !c.Done() {
		t.Fatal("core never finished")
	}
	if c.FinishedAt != 99 {
		t.Errorf("FinishedAt = %d, want 99 (CPI 1)", c.FinishedAt)
	}
	if c.MemOps != 0 {
		t.Errorf("compute-bound core issued %d memory ops", c.MemOps)
	}
}

// A memory-heavy core issues roughly MemRatio×instructions accesses
// with the configured read fraction.
func TestMemoryMix(t *testing.T) {
	// An L1 whose misses are filled instantly by a perfect memory, so
	// the core's instruction mix is observable without a protocol stack.
	var l1 *coherence.L1
	fill := func(m *coherence.Msg, now int64) {
		if m.Type == coherence.GetS || m.Type == coherence.GetM {
			l1.Deliver(&coherence.Msg{Type: coherence.Data, Addr: m.Addr, Excl: true}, now)
		}
	}
	l1 = coherence.NewL1(0, 1<<20, 16, 4, func(uint64) int { return 0 }, fill)
	p := Profile{Name: "memy", MemRatio: 0.5, ReadFrac: 0.8,
		PrivateBlocks: 64, SharedBlocks: 16, SharedFrac: 0.2, Locality: 0.5}
	c := NewCore(0, p, 20000, 3, l1)
	for now := int64(0); now < 40000 && !c.Done(); now++ {
		c.Tick(now)
	}
	if !c.Done() {
		t.Fatal("core never finished")
	}
	frac := float64(c.MemOps) / 20000
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("memory fraction %.3f, want ≈0.5", frac)
	}
	reads := float64(c.Loads) / float64(c.MemOps)
	if reads < 0.75 || reads > 0.85 {
		t.Errorf("read fraction %.3f, want ≈0.8", reads)
	}
}

// The core stalls while its L1 miss is outstanding.
func TestCoreBlocksOnMiss(t *testing.T) {
	sent := 0
	l1 := coherence.NewL1(0, 1024, 16, 4, func(uint64) int { return 0 },
		func(*coherence.Msg, int64) { sent++ })
	p := Profile{Name: "allmem", MemRatio: 1, ReadFrac: 1,
		PrivateBlocks: 4, SharedBlocks: 1, SharedFrac: 0, Locality: 0}
	c := NewCore(0, p, 100, 5, l1)
	c.Tick(0) // first instruction: a memory read → miss → busy
	if sent != 1 {
		t.Fatalf("first access sent %d messages, want 1 (GetS)", sent)
	}
	executedAfterMiss := c.Executed()
	for now := int64(1); now < 50; now++ {
		c.Tick(now)
	}
	if c.Executed() != executedAfterMiss {
		t.Error("core retired instructions while blocked on a miss")
	}
}

// Address streams are reproducible per seed and differ across nodes.
func TestAddressStreamDeterminism(t *testing.T) {
	gen := func(node int, seed int64) []uint64 {
		l1 := coherence.NewL1(node, 1<<20, 16, 4, func(uint64) int { return 0 }, func(*coherence.Msg, int64) {})
		p := Profile{Name: "s", MemRatio: 1, ReadFrac: 1,
			PrivateBlocks: 1000, SharedBlocks: 100, SharedFrac: 0.3, Locality: 0.5}
		c := NewCore(node, p, 500, seed, l1)
		var addrs []uint64
		for now := int64(0); now < 500 && !c.Done(); now++ {
			c.Tick(now)
			addrs = append(addrs, c.recent[len(c.recent)-1])
		}
		return addrs
	}
	a, b := gen(1, 9), gen(1, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same node+seed, different stream")
		}
	}
	other := gen(2, 9)
	same := true
	for i := range a {
		if i < len(other) && a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different nodes produced identical streams")
	}
}

// Private regions of different nodes never collide.
func TestPrivateRegionsDisjoint(t *testing.T) {
	p := Profile{Name: "p", MemRatio: 1, ReadFrac: 1,
		PrivateBlocks: 1 << 20, SharedBlocks: 1, SharedFrac: 0, Locality: 0}
	l1a := coherence.NewL1(3, 1024, 16, 4, func(uint64) int { return 0 }, func(*coherence.Msg, int64) {})
	ca := NewCore(3, p, 10, 1, l1a)
	blocks := map[uint64]bool{}
	for i := 0; i < 30; i++ {
		blocks[ca.nextBlock()] = true
	}
	l1b := coherence.NewL1(4, 1024, 16, 4, func(uint64) int { return 0 }, func(*coherence.Msg, int64) {})
	cb := NewCore(4, p, 10, 1, l1b)
	for i := 0; i < 30; i++ {
		if blocks[cb.nextBlock()] {
			t.Fatal("private regions of nodes 3 and 4 overlap")
		}
	}
}

// Locality: a fully local profile revisits its first block forever.
func TestLocalityReuse(t *testing.T) {
	p := Profile{Name: "l", MemRatio: 1, ReadFrac: 1,
		PrivateBlocks: 1 << 20, SharedBlocks: 1, SharedFrac: 0, Locality: 1}
	l1 := coherence.NewL1(0, 1024, 16, 4, func(uint64) int { return 0 }, func(*coherence.Msg, int64) {})
	c := NewCore(0, p, 10, 2, l1)
	first := c.nextBlock()
	for i := 0; i < 50; i++ {
		if got := c.nextBlock(); got != first {
			t.Fatalf("Locality=1 drew a new block %x (first %x)", got, first)
		}
	}
}

func TestNewCorePanics(t *testing.T) {
	l1 := coherence.NewL1(0, 1024, 16, 4, func(uint64) int { return 0 }, func(*coherence.Msg, int64) {})
	for name, f := range map[string]func(){
		"bad profile": func() { NewCore(0, Profile{}, 10, 1, l1) },
		"zero instr":  func() { NewCore(0, Profiles()[0], 0, 1, l1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// The working-set ordering that drives the Fig-8 per-app differences:
// canneal's footprint exceeds the 2048-block L1, swaptions' fits.
func TestWorkingSetOrdering(t *testing.T) {
	const l1Blocks = 32 * 1024 / 16
	ca, _ := ProfileByName("canneal")
	sw, _ := ProfileByName("swaptions")
	if ca.PrivateBlocks+ca.SharedBlocks <= l1Blocks {
		t.Error("canneal must exceed the L1")
	}
	if sw.PrivateBlocks+sw.SharedBlocks >= l1Blocks {
		t.Error("swaptions must fit in the L1")
	}
}
