// Package cpu models the processing elements of the §5.2 full-system
// experiments: simple in-order cores replaying synthetic per-application
// memory profiles through their private L1 caches.
//
// Each of the nine PARSEC applications [21] is represented by a profile
// capturing what distinguishes it at the NoC level — memory intensity,
// working-set size relative to the 32 KB L1, sharing degree and
// temporal locality.  Absolute execution times are not comparable to
// the paper's gem5 runs; the per-application *relative* behaviour of
// WH/Surf/SB is (DESIGN.md §2).
package cpu

import (
	"fmt"
	"math/rand"

	"surfbless/internal/coherence"
)

// Profile is one synthetic application.
type Profile struct {
	Name string

	MemRatio float64 // fraction of instructions that touch memory
	ReadFrac float64 // fraction of memory accesses that are loads

	PrivateBlocks int     // per-core private working set, in 16 B blocks
	SharedBlocks  int     // global shared region, in 16 B blocks
	SharedFrac    float64 // fraction of accesses into the shared region

	Locality float64 // probability of revisiting a recently used block
}

// Profiles returns the nine PARSEC-like applications of Figs. 8–10, in
// the paper's order.  The 32 KB L1 holds 2048 blocks: canneal, ferret
// and vips exceed it (cache-hostile), swaptions and blackscholes live
// inside it (compute-bound).
func Profiles() []Profile {
	return []Profile{
		{Name: "blackscholes", MemRatio: 0.15, ReadFrac: 0.80, PrivateBlocks: 1024, SharedBlocks: 256, SharedFrac: 0.10, Locality: 0.80},
		{Name: "bodytrack", MemRatio: 0.25, ReadFrac: 0.75, PrivateBlocks: 2048, SharedBlocks: 1024, SharedFrac: 0.25, Locality: 0.70},
		{Name: "canneal", MemRatio: 0.35, ReadFrac: 0.70, PrivateBlocks: 16384, SharedBlocks: 8192, SharedFrac: 0.30, Locality: 0.30},
		{Name: "dedup", MemRatio: 0.30, ReadFrac: 0.65, PrivateBlocks: 4096, SharedBlocks: 4096, SharedFrac: 0.40, Locality: 0.60},
		{Name: "ferret", MemRatio: 0.35, ReadFrac: 0.75, PrivateBlocks: 8192, SharedBlocks: 4096, SharedFrac: 0.35, Locality: 0.50},
		{Name: "fluidanimate", MemRatio: 0.25, ReadFrac: 0.70, PrivateBlocks: 4096, SharedBlocks: 2048, SharedFrac: 0.30, Locality: 0.70},
		{Name: "swaptions", MemRatio: 0.10, ReadFrac: 0.80, PrivateBlocks: 512, SharedBlocks: 128, SharedFrac: 0.05, Locality: 0.90},
		{Name: "vips", MemRatio: 0.30, ReadFrac: 0.70, PrivateBlocks: 8192, SharedBlocks: 2048, SharedFrac: 0.20, Locality: 0.50},
		{Name: "x264", MemRatio: 0.28, ReadFrac: 0.70, PrivateBlocks: 4096, SharedBlocks: 2048, SharedFrac: 0.35, Locality: 0.65},
	}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("cpu: unknown application %q", name)
}

// Validate reports the first problem with a (possibly custom) profile.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("cpu: profile without a name")
	case p.MemRatio < 0 || p.MemRatio > 1,
		p.ReadFrac < 0 || p.ReadFrac > 1,
		p.SharedFrac < 0 || p.SharedFrac > 1,
		p.Locality < 0 || p.Locality > 1:
		return fmt.Errorf("cpu: profile %q has a ratio outside [0,1]", p.Name)
	case p.PrivateBlocks < 1 || p.SharedBlocks < 1:
		return fmt.Errorf("cpu: profile %q needs non-empty working sets", p.Name)
	}
	return nil
}

// privateBase spaces per-core private regions far apart in block space.
const privateBase = uint64(1) << 32

// recentWindow is the temporal-locality reuse window, in blocks.
const recentWindow = 32

// Core is one in-order processing element.  It executes one instruction
// per cycle, blocking on L1 demand misses.
type Core struct {
	node int
	prof Profile
	rng  *rand.Rand
	l1   *coherence.L1

	target   int64
	executed int64

	recent []uint64
	rpos   int

	// FinishedAt is the cycle the core retired its last instruction, or
	// -1 while running.
	FinishedAt int64

	// Counters.
	MemOps, Loads, Stores int64
}

// NewCore builds a core executing `instructions` instructions of the
// profile against the given L1.
func NewCore(node int, prof Profile, instructions int64, seed int64, l1 *coherence.L1) *Core {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	if instructions < 1 {
		panic(fmt.Sprintf("cpu: core %d with %d instructions", node, instructions))
	}
	return &Core{
		node:       node,
		prof:       prof,
		rng:        rand.New(rand.NewSource(seed ^ int64(node)*0x9E3779B9)),
		l1:         l1,
		target:     instructions,
		FinishedAt: -1,
	}
}

// Done reports whether the core has retired its instruction quota.
func (c *Core) Done() bool { return c.FinishedAt >= 0 }

// Executed returns retired instructions (issued memory ops count when
// their access is issued; the core stalls until the miss resolves).
func (c *Core) Executed() int64 { return c.executed }

// Tick advances the core by one cycle.
func (c *Core) Tick(now int64) {
	if c.Done() || c.l1.Busy() {
		return
	}
	c.executed++
	if c.executed >= c.target {
		c.FinishedAt = now
		return
	}
	if c.rng.Float64() >= c.prof.MemRatio {
		return // a compute instruction: one cycle
	}
	c.MemOps++
	write := c.rng.Float64() >= c.prof.ReadFrac
	if write {
		c.Stores++
	} else {
		c.Loads++
	}
	block := c.nextBlock()
	c.l1.Access(block, write, now) // miss → Busy() stalls later Ticks
}

// nextBlock draws the next block address from the profile's mix of
// temporal reuse, shared region and private working set.
func (c *Core) nextBlock() uint64 {
	if len(c.recent) > 0 && c.rng.Float64() < c.prof.Locality {
		return c.recent[c.rng.Intn(len(c.recent))]
	}
	var block uint64
	if c.rng.Float64() < c.prof.SharedFrac {
		block = uint64(c.rng.Intn(c.prof.SharedBlocks))
	} else {
		block = privateBase + uint64(c.node)<<24 + uint64(c.rng.Intn(c.prof.PrivateBlocks))
	}
	if len(c.recent) < recentWindow {
		c.recent = append(c.recent, block)
	} else {
		c.recent[c.rpos] = block
		c.rpos = (c.rpos + 1) % recentWindow
	}
	return block
}
