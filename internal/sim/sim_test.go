package sim

import (
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/packet"
	"surfbless/internal/stats"
	"surfbless/internal/traffic"
)

func ctrlSources(domains int, rate float64) []traffic.Source {
	ss := make([]traffic.Source, domains)
	for i := range ss {
		ss[i] = traffic.Source{Rate: rate, Class: packet.Ctrl, VNet: -1}
	}
	return ss
}

func lowLoad(t *testing.T, m config.Model, domains int) Result {
	t.Helper()
	cfg := config.Default(m)
	cfg.Domains = domains
	// §5.1.2: packets are equally assigned/injected to each domain, so
	// the total offered load stays fixed as the domain count varies.
	res, err := Run(Options{
		Cfg:        cfg,
		Pattern:    traffic.UniformRandom,
		Sources:    ctrlSources(domains, 0.05/float64(domains)),
		Warmup:     500,
		Measure:    3000,
		Drain:      5000,
		Seed:       42,
		AuditEvery: 500,
	})
	if err != nil {
		t.Fatalf("%v D=%d: %v", m, domains, err)
	}
	return res
}

// Every model must deliver all traffic at low load and drain empty.
func TestLowLoadDelivery(t *testing.T) {
	for _, m := range []config.Model{
		config.WH, config.BLESS, config.Surf, config.SB, config.CHIPPER, config.RUNAHEAD,
	} {
		res := lowLoad(t, m, 1)
		if res.LeftInFlight != 0 {
			t.Errorf("%v: %d packets stuck after drain", m, res.LeftInFlight)
		}
		tot := res.Total
		if tot.Created == 0 || tot.Ejected != tot.Created {
			t.Errorf("%v: created %d, ejected %d", m, tot.Created, tot.Ejected)
		}
		if tot.Refused != 0 {
			t.Errorf("%v: %d offers refused at low load", m, tot.Refused)
		}
		t.Logf("%v: avg latency %.1f (net %.1f, queue %.1f), hops %.2f, defl %.3f",
			m, tot.AvgTotalLatency(), tot.AvgNetworkLatency(), tot.AvgQueueLatency(),
			tot.AvgHops(), tot.AvgDeflections())
	}
}

// Low-load latency sanity: bufferless models pay ~hops×3 cycles, VC
// models ~hops×5; uniform-random mean distance on an 8×8 mesh is 5.25.
func TestLowLoadLatencyBands(t *testing.T) {
	for _, tc := range []struct {
		m        config.Model
		min, max float64
	}{
		{config.BLESS, 12, 25},
		{config.SB, 12, 30},
		{config.WH, 20, 45},
		{config.Surf, 20, 55},
		{config.CHIPPER, 12, 30},
		{config.RUNAHEAD, 4, 15}, // single-cycle hops
	} {
		res := lowLoad(t, tc.m, 1)
		got := res.Total.AvgTotalLatency()
		if got < tc.min || got > tc.max {
			t.Errorf("%v: avg latency %.1f outside [%g, %g]", tc.m, got, tc.min, tc.max)
		}
	}
}

// SB must run cleanly (assertions are always on) for every §5.1.2
// domain count.
func TestSBAllDomainCounts(t *testing.T) {
	for d := 1; d <= 9; d++ {
		res := lowLoad(t, config.SB, d)
		if res.LeftInFlight != 0 {
			t.Errorf("D=%d: %d packets stuck", d, res.LeftInFlight)
		}
		if res.Total.Ejected == 0 {
			t.Errorf("D=%d: nothing delivered", d)
		}
	}
}

// Surf must run cleanly for every domain count too (4-flit VC per
// domain, as in §5.1.2).
func TestSurfAllDomainCounts(t *testing.T) {
	for d := 1; d <= 9; d++ {
		cfg := config.Default(config.Surf)
		cfg.Domains = d
		cfg.CtrlVCsPerPort, cfg.CtrlVCDepth = 0, 0
		cfg.DataVCsPerPort, cfg.DataVCDepth = 1, 4
		res, err := Run(Options{
			Cfg: cfg, Pattern: traffic.UniformRandom,
			Sources: ctrlSources(d, 0.02),
			Warmup:  500, Measure: 2000, Drain: 8000,
			Seed: 7, AuditEvery: 1000,
		})
		if err != nil {
			t.Fatalf("Surf D=%d: %v", d, err)
		}
		if res.Total.Ejected == 0 {
			t.Errorf("Surf D=%d: nothing delivered", d)
		}
		if res.LeftInFlight != 0 {
			t.Errorf("Surf D=%d: %d stuck", d, res.LeftInFlight)
		}
	}
}

// victimRun runs the Fig-5 scenario: domain 0 is the observed (victim)
// domain at a fixed 0.05 rate, domain 1 is interference at the given
// rate, and returns the victim's metrics.
func victimRun(t *testing.T, m config.Model, interferenceRate float64) stats.Domain {
	t.Helper()
	cfg := config.Default(m)
	cfg.Domains = 2
	res, err := Run(Options{
		Cfg:     cfg,
		Pattern: traffic.UniformRandom,
		Sources: []traffic.Source{
			{Rate: 0.05, Class: packet.Ctrl, VNet: -1},
			{Rate: interferenceRate, Class: packet.Ctrl, VNet: -1},
		},
		Warmup: 1000, Measure: 4000, Drain: 20000,
		Seed: 99, AuditEvery: 2000,
	})
	if err != nil {
		t.Fatalf("%v interference %.2f: %v", m, interferenceRate, err)
	}
	return res.Domains[0]
}

// The headline property (Fig. 5): Surf-Bless confines interference so
// tightly that the victim domain's statistics are BIT-IDENTICAL no
// matter what the other domain injects.
func TestSBNonInterferenceExact(t *testing.T) {
	base := victimRun(t, config.SB, 0)
	for _, rate := range []float64{0.05, 0.12, 0.2} {
		got := victimRun(t, config.SB, rate)
		if got != base {
			t.Errorf("SB victim metrics changed under interference %.2f:\nbase %+v\ngot  %+v",
				rate, base, got)
		}
	}
}

// …whereas BLESS, which does not support confined interference, must
// show the victim's latency rising with the interference load.
func TestBLESSInterferes(t *testing.T) {
	quiet := victimRun(t, config.BLESS, 0)
	loaded := victimRun(t, config.BLESS, 0.2)
	if loaded.AvgTotalLatency() <= quiet.AvgTotalLatency() {
		t.Errorf("BLESS victim latency did not rise: %.2f → %.2f",
			quiet.AvgTotalLatency(), loaded.AvgTotalLatency())
	}
}

// Surf also confines interference (it is the buffered comparator).
func TestSurfNonInterferenceExact(t *testing.T) {
	base := victimRun(t, config.Surf, 0)
	got := victimRun(t, config.Surf, 0.2)
	if got != base {
		t.Errorf("Surf victim metrics changed under interference:\nbase %+v\ngot  %+v", base, got)
	}
}

// WH does not confine interference either.
func TestWHInterferes(t *testing.T) {
	quiet := victimRun(t, config.WH, 0)
	loaded := victimRun(t, config.WH, 0.2)
	if loaded.AvgTotalLatency() <= quiet.AvgTotalLatency() {
		t.Errorf("WH victim latency did not rise: %.2f → %.2f",
			quiet.AvgTotalLatency(), loaded.AvgTotalLatency())
	}
}

// The §5.1.3 asymmetry: domain counts that do not divide 2·P = 6 pay an
// ejection-miss deflection penalty in SB.
func TestSBDomainCountDeflectionPenalty(t *testing.T) {
	defl := func(domains int) float64 {
		res := lowLoad(t, config.SB, domains)
		return res.Total.AvgDeflections()
	}
	aligned := defl(2)    // 6 % 2 == 0 → no ejection penalty
	misaligned := defl(4) // 6 % 4 != 0 → ejection-miss deflections
	if misaligned <= 2*aligned {
		t.Errorf("D=4 deflections %.3f not clearly above D=2 %.3f", misaligned, aligned)
	}
	// At 0.05 total load, aligned domains only see contention
	// deflections, which are rare.
	if aligned > 0.08 {
		t.Errorf("D=2 contention deflections %.3f unexpectedly high", aligned)
	}
}

// Multi-flit worms on explicit wave sets (the §5.2 configuration):
// 5-flit data packets in two domains, 1-flit control in the third.
func TestSBWaveSetsMultiFlit(t *testing.T) {
	cfg := config.Default(config.SB)
	cfg.Domains = 3
	cfg.InjectionVCDepth = 5
	cfg.WaveSets = paperWaveSets()
	res, err := Run(Options{
		Cfg:     cfg,
		Pattern: traffic.UniformRandom,
		Sources: []traffic.Source{
			{Rate: 0.01, Class: packet.Data, VNet: 1},
			{Rate: 0.01, Class: packet.Data, VNet: 2},
			{Rate: 0.03, Class: packet.Ctrl, VNet: 0},
		},
		SlotWidths: []int{5, 5, 1},
		Warmup:     500, Measure: 3000, Drain: 20000,
		Seed: 5, AuditEvery: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeftInFlight != 0 {
		t.Fatalf("%d packets stuck", res.LeftInFlight)
	}
	for d := 0; d < 3; d++ {
		if res.Domains[d].Ejected == 0 {
			t.Errorf("domain %d delivered nothing", d)
		}
	}
	// Data domains own 15/42 of the waves in 3 windows: their latency
	// must exceed the control domain's (fewer injection opportunities).
	if res.Domains[0].AvgTotalLatency() <= res.Domains[2].AvgTotalLatency() {
		t.Errorf("data latency %.1f not above control latency %.1f",
			res.Domains[0].AvgTotalLatency(), res.Domains[2].AvgTotalLatency())
	}
}

// paperWaveSets returns the §5.2 assignment for Smax = 42.
func paperWaveSets() [][]int {
	span := func(a, b int) []int {
		var s []int
		for w := a; w <= b; w++ {
			s = append(s, w)
		}
		return s
	}
	data0 := append(append(span(0, 4), span(15, 19)...), span(30, 34)...)
	data1 := append(append(span(7, 11), span(22, 26)...), span(37, 41)...)
	owned := map[int]bool{}
	for _, w := range append(append([]int{}, data0...), data1...) {
		owned[w] = true
	}
	var ctrl []int
	for w := 0; w < 42; w++ {
		if !owned[w] {
			ctrl = append(ctrl, w)
		}
	}
	return [][]int{data0, data1, ctrl}
}

// Option validation.
func TestRunValidation(t *testing.T) {
	cfg := config.Default(config.SB)
	if _, err := Run(Options{Cfg: cfg, Sources: nil, Measure: 100}); err == nil {
		t.Error("missing sources accepted")
	}
	if _, err := Run(Options{Cfg: cfg, Sources: ctrlSources(1, 0.1), Measure: 0}); err == nil {
		t.Error("zero measure accepted")
	}
	bad := cfg
	bad.Domains = 0
	if _, err := Run(Options{Cfg: bad, Sources: ctrlSources(1, 0.1), Measure: 100}); err == nil {
		t.Error("invalid config accepted")
	}
}

// Determinism: identical options give identical results.
func TestRunDeterministic(t *testing.T) {
	opts := Options{
		Cfg:     config.Default(config.SB),
		Pattern: traffic.UniformRandom,
		Sources: ctrlSources(1, 0.1),
		Warmup:  200, Measure: 1000, Drain: 5000,
		Seed: 11,
	}
	opts.Cfg.Domains = 1
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total || a.Cycles != b.Cycles {
		t.Error("identical runs diverged")
	}
}
