package sim

import (
	"fmt"

	"surfbless/internal/probe"
)

// InvariantViolation is a router invariant panic caught at the sim
// boundary.  Fault plans can push fabrics into states the fault-free
// correctness proofs exclude; when that happens the panic is converted
// into this typed error (wrapped in a DegradedError) instead of
// killing the whole sweep process.
type InvariantViolation struct {
	Cycle int64 // cycle being stepped when the fabric panicked
	Msg   string
}

func (e *InvariantViolation) Error() string {
	return fmt.Sprintf("sim: invariant violation at cycle %d: %s", e.Cycle, e.Msg)
}

// DegradedError reports a run that did not complete healthily — the
// livelock/starvation watchdog tripped, or a fabric invariant panic
// was recovered — but still produced meaningful partial statistics.
// Run returns the same partial Result alongside the error, so callers
// that only look at the error lose nothing, while sweep harnesses can
// record the partial row and move on to the next point.
type DegradedError struct {
	Reason  string
	Cycle   int64  // cycle at which degradation was detected
	Partial Result // statistics up to Cycle (energy, latency, counts)
	Cause   error  // underlying *InvariantViolation, if any
	// Flight is the forensic record of the run's final cycles, present
	// when Options.Recorder armed a flight recorder.  Write it with
	// probe.FlightDump.WriteJSON and inspect it with `replay -flight`.
	Flight *probe.FlightDump
}

func (e *DegradedError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("sim: degraded at cycle %d: %s: %v", e.Cycle, e.Reason, e.Cause)
	}
	return fmt.Sprintf("sim: degraded at cycle %d: %s", e.Cycle, e.Reason)
}

func (e *DegradedError) Unwrap() error { return e.Cause }
