package sim

import (
	"fmt"

	"surfbless/internal/probe"
)

// InvariantViolation is a router invariant panic caught at the sim
// boundary.  Fault plans can push fabrics into states the fault-free
// correctness proofs exclude; when that happens the panic is converted
// into this typed error (wrapped in a DegradedError) instead of
// killing the whole sweep process.
type InvariantViolation struct {
	Cycle int64 // cycle being stepped when the fabric panicked
	Msg   string
}

func (e *InvariantViolation) Error() string {
	return fmt.Sprintf("sim: invariant violation at cycle %d: %s", e.Cycle, e.Msg)
}

// DegradedKind classifies why a run degraded, so harnesses and the
// sweep service can decide between "retry might help" and "this point
// is permanently wedged".  Every simulation is deterministic, but the
// distinction still matters operationally: a fault-wedge on a blocking
// fabric (WH/Surf with a killed link or frozen router in a packet's
// only path) reproduces on every attempt, while livelock/starvation on
// a deflecting fabric describes traffic pathology worth reporting as
// data rather than failure.
type DegradedKind int

const (
	// KindUnknown is the zero value for errors predating classification.
	KindUnknown DegradedKind = iota
	// KindLivelock is a global no-progress trip on a fabric that is not
	// wedge-prone: packets keep moving without resolving.
	KindLivelock
	// KindStarvation is a per-packet age-ceiling trip: the network makes
	// progress overall but leaves at least one packet behind.
	KindStarvation
	// KindFaultWedge is a watchdog trip on a blocking fabric (WH/Surf)
	// with a fault plan armed: a killed link or frozen router has
	// blocked a path with no deflection escape, so the wedge is
	// permanent and retrying the point cannot help.
	KindFaultWedge
	// KindInvariant is a recovered fabric invariant panic.
	KindInvariant
)

var degradedKindNames = map[DegradedKind]string{
	KindUnknown:    "unknown",
	KindLivelock:   "livelock",
	KindStarvation: "starvation",
	KindFaultWedge: "fault-wedge",
	KindInvariant:  "invariant",
}

func (k DegradedKind) String() string {
	if s, ok := degradedKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("DegradedKind(%d)", int(k))
}

// Permanent reports whether rerunning the same options is guaranteed to
// degrade again for a structural reason: fault wedges and invariant
// panics are properties of the (deterministic) configuration, not of
// transient host conditions, so the sweep service marks such points
// permanently failed instead of burning retry budget on them.
func (k DegradedKind) Permanent() bool {
	return k == KindFaultWedge || k == KindInvariant
}

// DegradedError reports a run that did not complete healthily — the
// livelock/starvation watchdog tripped, or a fabric invariant panic
// was recovered — but still produced meaningful partial statistics.
// Run returns the same partial Result alongside the error, so callers
// that only look at the error lose nothing, while sweep harnesses can
// record the partial row and move on to the next point.
type DegradedError struct {
	Reason  string
	Kind    DegradedKind // classified cause (fault-wedge vs starvation …)
	Cycle   int64        // cycle at which degradation was detected
	Partial Result       // statistics up to Cycle (energy, latency, counts)
	Cause   error        // underlying *InvariantViolation, if any
	// Flight is the forensic record of the run's final cycles, present
	// when Options.Recorder armed a flight recorder.  Write it with
	// probe.FlightDump.WriteJSON and inspect it with `replay -flight`.
	// Its Reason carries the classified kind prefix, so dumps can be
	// triaged without the originating error.
	Flight *probe.FlightDump
}

func (e *DegradedError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("sim: degraded at cycle %d: %s: %v", e.Cycle, e.Reason, e.Cause)
	}
	return fmt.Sprintf("sim: degraded at cycle %d: %s", e.Cycle, e.Reason)
}

func (e *DegradedError) Unwrap() error { return e.Cause }

// CanceledError reports a run stopped by its Options.Ctx — a per-point
// timeout or a worker drain, not a simulation outcome.  It wraps the
// context's error so errors.Is(err, context.DeadlineExceeded) (or
// context.Canceled) distinguishes timeouts from shutdowns.
type CanceledError struct {
	Cycle int64 // cycle at which cancellation was observed
	Cause error // the context's Err()

	// Partial carries the statistics accumulated up to the cancellation,
	// with MeasuredCycles clamped to the covered window (zero when the
	// run was canceled inside warm-up) — mirroring DegradedError so
	// harnesses that record canceled points never divide by the full
	// measure window.
	Partial Result
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: canceled at cycle %d: %v", e.Cycle, e.Cause)
}

func (e *CanceledError) Unwrap() error { return e.Cause }
