package sim

import (
	"encoding/json"
	"fmt"

	"surfbless/internal/simcache"
)

// FingerprintVersion tags the canonical Options serialization AND the
// simulator's behaviour.  Bump it whenever either changes semantics —
// a new Options field, a router/traffic/energy change that alters
// results for unchanged options — so stale cache entries become
// unreachable instead of wrong.
// v2: fault plans, retransmission accounting, degradation watchdog.
const FingerprintVersion = "surfbless-sim-v2"

// Fingerprint derives the content-addressed cache key of a run: a
// SHA-256 of FingerprintVersion plus the canonical JSON serialization
// of the options.  encoding/json emits struct fields in declaration
// order, so equal options always serialize to equal bytes; everything
// a run depends on — config, pattern, sources, slot widths, phases,
// seed, audit cadence, energy coefficients — is an exported field of
// Options and therefore covered.
func Fingerprint(o Options) (simcache.Key, error) {
	payload, err := json.Marshal(o)
	if err != nil {
		return simcache.Key{}, fmt.Errorf("sim: fingerprint: %w", err)
	}
	return simcache.Fingerprint(FingerprintVersion, payload), nil
}

// RunCached is Run behind a content-addressed cache: a hit
// deserializes the stored Result, a miss runs the simulation and
// stores it.  A nil cache, an unserializable option set, or a cached
// value that no longer decodes all degrade to a plain Run — the cache
// can make a run faster, never wrong.  Observed runs (a Probe or
// Tracer attached) always simulate for real: a cache hit would return
// the right Result but leave the observer with nothing to observe.
func RunCached(o Options, c *simcache.Cache) (Result, error) {
	if c == nil || o.Observed() {
		return Run(o)
	}
	key, err := Fingerprint(o)
	if err != nil {
		return Run(o)
	}
	if raw, ok := c.Get(key); ok {
		var res Result
		if err := json.Unmarshal(raw, &res); err == nil {
			return res, nil
		}
		c.NoteCorrupt()
	}
	res, err := Run(o)
	if err != nil {
		return res, err
	}
	if raw, err := json.Marshal(res); err == nil {
		c.Put(key, raw)
	}
	return res, nil
}
