package sim

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/fault"
	"surfbless/internal/network"
	"surfbless/internal/packet"
	"surfbless/internal/stats"
	"surfbless/internal/traffic"
)

// faultyOptions returns an SB run with a mixed fault plan: a transient
// router freeze, a flapping link and a lossy link.
func faultyOptions(maxRetries int) Options {
	cfg := config.Default(config.SB)
	cfg.Domains = 2
	cfg.Faults = &fault.Plan{
		Seed:       7,
		MaxRetries: maxRetries,
		Events: []fault.Event{
			{Kind: fault.RouterFreeze, Node: 27, At: 500, Repair: 300, Period: 1000},
			{Kind: fault.LinkFlap, Node: 36, Dir: int(0 /* North */), At: 200, Repair: 200, Period: 800},
			{Kind: fault.PacketDrop, Node: 28, Dir: int(1 /* East */), At: 0, Prob: 0.3},
		},
	}
	return Options{
		Cfg:        cfg,
		Pattern:    traffic.UniformRandom,
		Sources:    ctrlSources(2, 0.05),
		Warmup:     200,
		Measure:    3000,
		Drain:      8000,
		Seed:       42,
		AuditEvery: 500,
	}
}

// A fault-plan run must be deterministic for a fixed seed and actually
// exercise the drop/retransmit machinery.
func TestFaultRunDeterministic(t *testing.T) {
	a, err := Run(faultyOptions(1))
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := Run(faultyOptions(1))
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fault run not deterministic:\nA: %+v\nB: %+v", a, b)
	}
	if a.Total.Retransmits == 0 {
		t.Errorf("no retransmissions despite a 0.3 packet-drop link")
	}
	if a.Total.Dropped == 0 {
		t.Errorf("no drops despite retry budget 1 on a 0.3 packet-drop link")
	}
	perDomain := int64(0)
	for _, d := range a.Domains {
		perDomain += d.Dropped + d.Retransmits
	}
	if perDomain == 0 {
		t.Errorf("fault accounting missing from per-domain stats: %+v", a.Domains)
	}
	t.Logf("created %d ejected %d dropped %d retransmits %d left %d",
		a.Total.Created, a.Total.Ejected, a.Total.Dropped, a.Total.Retransmits, a.LeftInFlight)
}

// An armed injector whose windows never open must not perturb results:
// the fault-free run and the never-active-fault run must be
// bit-identical (the nil checks on the hot path are behavior-neutral).
func TestInactiveFaultsBitIdentical(t *testing.T) {
	for _, m := range []config.Model{config.BLESS, config.SB, config.CHIPPER, config.RUNAHEAD, config.WH} {
		base := Options{
			Cfg:        config.Default(m),
			Pattern:    traffic.UniformRandom,
			Sources:    ctrlSources(1, 0.05),
			Warmup:     200,
			Measure:    2000,
			Drain:      5000,
			Seed:       9,
			AuditEvery: 500,
		}
		clean, err := Run(base)
		if err != nil {
			t.Fatalf("%v clean: %v", m, err)
		}
		armed := base
		armed.Cfg.Faults = &fault.Plan{Events: []fault.Event{
			// Activates long after the longest possible run.
			{Kind: fault.RouterFreeze, Node: 0, At: 1 << 40, Repair: 1},
		}}
		faulty, err := Run(armed)
		if err != nil {
			t.Fatalf("%v armed: %v", m, err)
		}
		if !reflect.DeepEqual(clean, faulty) {
			t.Errorf("%v: inactive fault plan changed results:\nclean: %+v\narmed: %+v", m, clean, faulty)
		}
	}
}

// A permanent link kill on the wormhole baseline wedges XY routing;
// the watchdog must convert the wedge into a DegradedError carrying
// partial statistics, not an infinite drain.
func TestWatchdogConvertsWedgeToDegradedError(t *testing.T) {
	cfg := config.Default(config.WH)
	cfg.Width, cfg.Height = 4, 4
	cfg.Faults = &fault.Plan{Events: []fault.Event{
		{Kind: fault.LinkKill, Node: 0, Dir: int(1 /* East */), At: 0},
	}}
	_, err := Run(Options{
		Cfg:     cfg,
		Pattern: traffic.UniformRandom,
		Sources: ctrlSources(1, 0.05),
		Warmup:  0,
		Measure: 3000,
		Drain:   50000,
		Seed:    3,
		// Small explicit thresholds so the test stays fast.
		WatchdogNoProgress: 3000,
		WatchdogMaxAge:     -1,
	})
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("expected DegradedError, got %v", err)
	}
	if de.Kind != KindFaultWedge {
		t.Errorf("Kind = %v, want %v (blocking fabric wedged by an armed fault)", de.Kind, KindFaultWedge)
	}
	if !de.Kind.Permanent() {
		t.Errorf("a fault-wedge must classify as permanent")
	}
	if !strings.Contains(de.Reason, "fault-wedge") {
		t.Errorf("reason %q, want a fault-wedge report", de.Reason)
	}
	if de.Partial.Total.Created == 0 || de.Partial.Total.Ejected == 0 {
		t.Errorf("partial stats empty: %+v", de.Partial.Total)
	}
	if de.Partial.LeftInFlight == 0 {
		t.Errorf("degraded run reports an empty network")
	}
	t.Logf("degraded: %v (ejected %d of %d, %d stuck)", de,
		de.Partial.Total.Ejected, de.Partial.Total.Created, de.Partial.LeftInFlight)
}

// A degraded run that ends mid-measurement must report the cycles it
// actually measured, not the full configured window: Throughput divides
// ejections by MeasuredCycles, so the configured o.Measure would
// silently under-report the accepted rate of every degraded point in a
// fault sweep.
func TestDegradedRunClampsMeasuredCycles(t *testing.T) {
	cfg := config.Default(config.WH)
	cfg.Width, cfg.Height = 4, 4
	// Freeze the whole mesh shortly after warmup: with every router
	// granting nothing, progress stops completely and the no-progress
	// check must fire well inside the measurement window.
	events := make([]fault.Event, cfg.Nodes())
	for i := range events {
		events[i] = fault.Event{Kind: fault.RouterFreeze, Node: i, At: 1000}
	}
	cfg.Faults = &fault.Plan{Events: events}
	const warmup, measure = 200, 50000
	res, err := Run(Options{
		Cfg:                cfg,
		Pattern:            traffic.UniformRandom,
		Sources:            ctrlSources(1, 0.05),
		Warmup:             warmup,
		Measure:            measure, // far longer than the watchdog allows
		Drain:              50000,
		Seed:               3,
		WatchdogNoProgress: 3000,
		WatchdogMaxAge:     -1,
	})
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("expected DegradedError, got %v", err)
	}
	if res.MeasuredCycles >= measure {
		t.Fatalf("MeasuredCycles = %d, want < %d (run was cut short)", res.MeasuredCycles, measure)
	}
	if want := res.Cycles - warmup; res.MeasuredCycles != want {
		t.Errorf("MeasuredCycles = %d, want %d (Cycles %d − Warmup %d)",
			res.MeasuredCycles, want, res.Cycles, warmup)
	}
	if res.MeasuredCycles <= 0 {
		t.Fatalf("MeasuredCycles = %d, want > 0 (watchdog tripped after warmup)", res.MeasuredCycles)
	}
	// Throughput must use the clamped denominator.
	want := float64(res.Domains[0].Ejected) / float64(res.Nodes) / float64(res.MeasuredCycles)
	if got := res.Throughput(0); got != want {
		t.Errorf("Throughput(0) = %g, want %g", got, want)
	}
	if res.Throughput(0) == 0 {
		t.Error("degraded run reports zero throughput despite ejections")
	}

	// The same clamp must hold when the run ends by context cancellation
	// instead of degradation — and in the harshest spot: inside warm-up,
	// where the covered measurement window is empty.  The cycle loop
	// polls the context every 1024th cycle, so a pre-canceled context
	// stops the run well before a 5000-cycle warm-up completes.
	t.Run("canceled-in-warmup", func(t *testing.T) {
		cfg := config.Default(config.WH)
		cfg.Width, cfg.Height = 4, 4
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := Run(Options{
			Cfg:     cfg,
			Pattern: traffic.UniformRandom,
			Sources: ctrlSources(1, 0.05),
			Warmup:  5000,
			Measure: 10000,
			Drain:   10000,
			Seed:    3,
			Ctx:     ctx,
		})
		var ce *CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("expected CanceledError, got %v", err)
		}
		if ce.Cycle >= 5000 {
			t.Fatalf("canceled at cycle %d, want inside the 5000-cycle warm-up", ce.Cycle)
		}
		if res.MeasuredCycles != 0 {
			t.Errorf("MeasuredCycles = %d, want 0 (cancellation landed inside warm-up)", res.MeasuredCycles)
		}
		if got := res.Throughput(0); got != 0 {
			t.Errorf("Throughput(0) = %g, want 0 with an empty measurement window", got)
		}
		if !reflect.DeepEqual(res, ce.Partial) {
			t.Errorf("returned Result differs from CanceledError.Partial")
		}
		if res.Cycles != ce.Cycle {
			t.Errorf("Cycles = %d, want the cancellation cycle %d", res.Cycles, ce.Cycle)
		}
	})
}

// The starvation (age-ceiling) check must fire even while unrelated
// traffic keeps the no-progress detector happy.
func TestWatchdogAgeCeiling(t *testing.T) {
	cfg := config.Default(config.WH)
	cfg.Width, cfg.Height = 4, 4
	cfg.Faults = &fault.Plan{Events: []fault.Event{
		{Kind: fault.LinkKill, Node: 0, Dir: int(1 /* East */), At: 0},
	}}
	_, err := Run(Options{
		Cfg:                cfg,
		Pattern:            traffic.UniformRandom,
		Sources:            ctrlSources(1, 0.05),
		Measure:            10000,
		Drain:              30000,
		Seed:               3,
		WatchdogNoProgress: -1,
		WatchdogMaxAge:     8000,
	})
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("expected DegradedError, got %v", err)
	}
	if de.Kind != KindFaultWedge {
		t.Errorf("Kind = %v, want %v (WH age-ceiling trip under an armed fault plan)", de.Kind, KindFaultWedge)
	}
	if !strings.Contains(de.Reason, "fault-wedge") {
		t.Errorf("reason %q, want a fault-wedge report", de.Reason)
	}
	// The check is pigeonhole-based, so it is conservative: it cannot
	// fire before the creation window catches up with the stragglers,
	// but it must fire well before the drain budget runs out.
	if de.Cycle >= 10000+30000 {
		t.Errorf("age ceiling never fired within the drain budget")
	}
}

// Runs that end with packets still in flight and packets dropped must
// still satisfy conservation per domain (created = ejected + dropped +
// in-flight), exercised through the final audit.
func TestConservationWithDropsAndLeftInFlight(t *testing.T) {
	o := faultyOptions(-1) // -1: no retries, every fault loss is a drop
	o.Drain = 3            // cut the drain short to strand packets
	res, err := Run(o)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.LeftInFlight == 0 {
		t.Fatalf("expected stranded packets with a 40-cycle drain")
	}
	if res.Total.Dropped == 0 {
		t.Fatalf("expected drops with retries disabled")
	}
	if got := res.Total.Created - res.Total.Ejected - res.Total.Dropped; got != int64(res.LeftInFlight) {
		t.Errorf("created-ejected-dropped = %d but %d in flight", got, res.LeftInFlight)
	}
}

// panicFabric wedges runLoop's recover boundary: it explodes at a set
// cycle, standing in for a router invariant violation.
type panicFabric struct {
	at       int64
	inFlight int
}

func (f *panicFabric) Inject(node int, p *packet.Packet, now int64) bool {
	f.inFlight++
	return true
}

func (f *panicFabric) Step(now int64) {
	if now >= f.at {
		panic("port balance violated (test)")
	}
}

func (f *panicFabric) InFlight() int { return f.inFlight }
func (f *panicFabric) Audit() error  { return nil }

var _ network.Fabric = (*panicFabric)(nil)

// runLoop must convert a fabric panic into a typed InvariantViolation
// carrying the cycle, instead of unwinding the caller.
func TestRunLoopRecoversFabricPanic(t *testing.T) {
	o := Options{
		Cfg:     config.Default(config.SB),
		Pattern: traffic.UniformRandom,
		Sources: ctrlSources(1, 0.05),
		Warmup:  0,
		Measure: 1000,
	}
	col := stats.NewCollector(1, 0, 1000)
	gen := traffic.New(o.Cfg.Mesh(), o.Pattern, o.Sources, 1)
	now := int64(0)
	err := runLoop(o, &panicFabric{at: 250}, gen, col, &now)
	var iv *InvariantViolation
	if !errors.As(err, &iv) {
		t.Fatalf("expected InvariantViolation, got %v", err)
	}
	if iv.Cycle != 250 {
		t.Errorf("violation at cycle %d, want 250", iv.Cycle)
	}
	if iv.Msg != "port balance violated (test)" {
		t.Errorf("message %q lost the panic value", iv.Msg)
	}
}
