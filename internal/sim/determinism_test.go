package sim

import (
	"reflect"
	"sync"
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/simcache"
	"surfbless/internal/traffic"
)

// The result cache is only sound if Run is a pure function of its
// Options.  These tests enforce that: identical options must yield
// deep-equal results and identical fingerprints, run back to back or
// concurrently in any order (the experiments package fans runs out
// through a parallel map, so scheduling must not leak into results).

func determinismOptions(model config.Model, seed int64) Options {
	cfg := config.Default(model)
	cfg.Domains = 2
	return Options{
		Cfg:     cfg,
		Pattern: traffic.UniformRandom,
		Sources: ctrlSources(2, 0.04),
		Warmup:  100, Measure: 1000, Drain: 20000,
		Seed: seed,
	}
}

func TestRunDeterminism(t *testing.T) {
	for _, model := range []config.Model{config.BLESS, config.SB, config.WH, config.Surf} {
		o := determinismOptions(model, 11)
		r1, err := Run(o)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		r2, err := Run(o)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("%v: identical options produced different results:\n%+v\n%+v", model, r1, r2)
		}
		k1, err := Fingerprint(o)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := Fingerprint(o)
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Errorf("%v: identical options fingerprint differently", model)
		}
		if ko, err := Fingerprint(determinismOptions(model, 12)); err != nil || ko == k1 {
			t.Errorf("%v: different seeds share a fingerprint (err %v)", model, err)
		}
	}
}

// Recycling ejected packets through the free list must be observably
// equivalent to fresh allocation on every model: bit-identical results
// and an unchanged cache fingerprint (Recycle is fingerprint-exempt).
// RUNAHEAD is included deliberately — there Recycle must be a no-op.
func TestRecycleMatchesFresh(t *testing.T) {
	for _, model := range []config.Model{
		config.WH, config.BLESS, config.Surf, config.SB, config.CHIPPER, config.RUNAHEAD,
	} {
		fresh := determinismOptions(model, 7)
		recycled := fresh
		recycled.Recycle = true
		rf, err := Run(fresh)
		if err != nil {
			t.Fatalf("%v fresh: %v", model, err)
		}
		rr, err := Run(recycled)
		if err != nil {
			t.Fatalf("%v recycled: %v", model, err)
		}
		if !reflect.DeepEqual(rf, rr) {
			t.Errorf("%v: recycling changed the result:\n%+v\n%+v", model, rf, rr)
		}
		kf, err := Fingerprint(fresh)
		if err != nil {
			t.Fatal(err)
		}
		kr, err := Fingerprint(recycled)
		if err != nil {
			t.Fatal(err)
		}
		if kf != kr {
			t.Errorf("%v: Recycle leaked into the cache fingerprint", model)
		}
	}
}

// Sharded stepping must be observably equivalent to serial stepping on
// every model: bit-identical results and an unchanged cache fingerprint
// (Shards is fingerprint-exempt).  Models without sharded stepping are
// included deliberately — there Shards must be a no-op.
func TestShardMatchesSerial(t *testing.T) {
	for _, model := range []config.Model{
		config.WH, config.BLESS, config.Surf, config.SB, config.CHIPPER, config.RUNAHEAD,
	} {
		serial := determinismOptions(model, 7)
		sharded := serial
		sharded.Shards = 4
		rs, err := Run(serial)
		if err != nil {
			t.Fatalf("%v serial: %v", model, err)
		}
		rp, err := Run(sharded)
		if err != nil {
			t.Fatalf("%v sharded: %v", model, err)
		}
		if !reflect.DeepEqual(rs, rp) {
			t.Errorf("%v: sharding changed the result:\n%+v\n%+v", model, rs, rp)
		}
		ks, err := Fingerprint(serial)
		if err != nil {
			t.Fatal(err)
		}
		kp, err := Fingerprint(sharded)
		if err != nil {
			t.Fatal(err)
		}
		if ks != kp {
			t.Errorf("%v: Shards leaked into the cache fingerprint", model)
		}
	}
}

// TestShardMatchesSerialGiant is the CI gate for the headline claim: a
// 32×32 mesh stepped with Shards=4 produces results bit-identical to
// Shards=1.  It runs on the VC fabrics and SB (the sharded models) with
// a shortened window so `make bench-shard` stays a smoke test under
// -race.
func TestShardMatchesSerialGiant(t *testing.T) {
	for _, model := range []config.Model{config.WH, config.Surf, config.SB} {
		cfg := config.Default(model)
		cfg.Width, cfg.Height = 32, 32
		cfg.Domains = 2
		o := Options{
			Cfg:     cfg,
			Pattern: traffic.UniformRandom,
			Sources: ctrlSources(2, 0.02),
			Warmup:  50, Measure: 300, Drain: 20000,
			Seed: 9,
		}
		sharded := o
		sharded.Shards = 4
		rs, err := Run(o)
		if err != nil {
			t.Fatalf("%v serial: %v", model, err)
		}
		rp, err := Run(sharded)
		if err != nil {
			t.Fatalf("%v sharded: %v", model, err)
		}
		if !reflect.DeepEqual(rs, rp) {
			t.Errorf("%v: 32×32 sharding changed the result:\n%+v\n%+v", model, rs, rp)
		}
	}
}

// TestRunDeterminismAcrossOrderings executes the same batch of runs
// serially, concurrently in submission order, and concurrently in
// reverse order; every ordering must produce the identical result set.
func TestRunDeterminismAcrossOrderings(t *testing.T) {
	var opts []Options
	for _, model := range []config.Model{config.BLESS, config.SB} {
		for seed := int64(1); seed <= 3; seed++ {
			opts = append(opts, determinismOptions(model, seed))
		}
	}
	serial := make([]Result, len(opts))
	for i, o := range opts {
		r, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = r
	}
	concurrent := func(order []int) []Result {
		out := make([]Result, len(opts))
		var wg sync.WaitGroup
		for _, i := range order {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r, err := Run(opts[i])
				if err != nil {
					t.Error(err)
					return
				}
				out[i] = r
			}(i)
		}
		wg.Wait()
		return out
	}
	forward := make([]int, len(opts))
	backward := make([]int, len(opts))
	for i := range opts {
		forward[i] = i
		backward[i] = len(opts) - 1 - i
	}
	for name, got := range map[string][]Result{
		"concurrent":          concurrent(forward),
		"concurrent-reversed": concurrent(backward),
	} {
		for i := range serial {
			if !reflect.DeepEqual(serial[i], got[i]) {
				t.Errorf("%s: run %d diverged from the serial result", name, i)
			}
		}
	}
}

// TestRunCachedRoundTrip checks the cache path end to end: a miss
// stores the result, a hit returns a deep-equal copy (the JSON
// round-trip must lose nothing the figures read), and the fingerprints
// agree byte-for-byte across the two runs.
func TestRunCachedRoundTrip(t *testing.T) {
	c, err := simcache.New(simcache.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	o := determinismOptions(config.SB, 5)
	miss, err := RunCached(o, c)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := RunCached(o, c)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 1 || s.Corrupt != 0 {
		t.Fatalf("stats %+v, want exactly one miss then one hit", s)
	}
	if !reflect.DeepEqual(miss, hit) {
		t.Errorf("cached result differs from computed result:\n%+v\n%+v", miss, hit)
	}
	direct, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, hit) {
		t.Error("cached result differs from an uncached Run")
	}
	// A nil cache degrades to a plain Run.
	plain, err := RunCached(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, direct) {
		t.Error("nil-cache RunCached differs from Run")
	}
}
