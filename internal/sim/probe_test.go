package sim

import (
	"reflect"
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/geom"
	"surfbless/internal/packet"
	"surfbless/internal/probe"
	"surfbless/internal/simcache"
	"surfbless/internal/traffic"
)

// probedRun executes one SB run with a probe attached and a drain
// budget generous enough to empty the network, so probe totals must
// reconcile with the collector exactly.  shards > 1 steps the mesh on
// the sharded path.
func probedRun(t *testing.T, sources []traffic.Source, every int64, shards int) (Result, *probe.Probe) {
	t.Helper()
	cfg := config.Default(config.SB)
	cfg.Domains = len(sources)
	p := &probe.Probe{}
	res, err := Run(Options{
		Cfg:        cfg,
		Pattern:    traffic.UniformRandom,
		Sources:    sources,
		Warmup:     500,
		Measure:    3000,
		Drain:      50000,
		Seed:       7,
		AuditEvery: 500,
		Probe:      p,
		ProbeEvery: every,
		Shards:     shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeftInFlight != 0 {
		t.Fatalf("network did not drain: %d left in flight", res.LeftInFlight)
	}
	return res, p
}

// TestProbeReconciliation is the exactness contract: on a drained 8×8
// SB run, the probe's per-domain time-series totals and its heatmap
// sums must equal the collector's aggregate stats to the packet — on
// the serial path and, identically, on the sharded path (router
// segments are tile-local and drained at the per-cycle barrier, so
// their contents interleave deterministically across tiles).
func TestProbeReconciliation(t *testing.T) {
	res, p := probedRun(t, ctrlSources(2, 0.05), 100, 1)
	reconcileProbe(t, res, p)

	resSh, pSh := probedRun(t, ctrlSources(2, 0.05), 100, 4)
	reconcileProbe(t, resSh, pSh)
	if !reflect.DeepEqual(res, resSh) {
		t.Errorf("sharding changed the probed result:\n%+v\n%+v", res, resSh)
	}
	if !reflect.DeepEqual(p.Totals(), pSh.Totals()) {
		t.Errorf("sharding changed probe totals:\nserial %+v\nsharded %+v", p.Totals(), pSh.Totals())
	}
	if !reflect.DeepEqual(p.Heatmap(), pSh.Heatmap()) {
		t.Error("sharding changed the probe heatmap")
	}
}

func reconcileProbe(t *testing.T, res Result, p *probe.Probe) {
	t.Helper()
	tot := p.Totals()
	for d := range res.Domains {
		want := res.Domains[d]
		got := tot[d]
		if got.Created != want.Created || got.Refused != want.Refused ||
			got.Injected != want.Injected || got.Ejected != want.Ejected {
			t.Errorf("domain %d lifecycle: probe %+v vs stats %+v", d, got, want)
		}
		if got.Deflections != want.Deflections {
			t.Errorf("domain %d deflections: probe %d vs stats %d", d, got.Deflections, want.Deflections)
		}
		if got.LatencySum != want.TotalLatencySum {
			t.Errorf("domain %d latency sum: probe %d vs stats %d", d, got.LatencySum, want.TotalLatencySum)
		}
	}

	h := p.Heatmap()
	var ej, defl, routerFlits, linkFlits int64
	for id := range h.RouterEjections {
		ej += h.RouterEjections[id]
		defl += h.RouterDeflections[id]
		routerFlits += h.RouterFlits[id]
		for d := 0; d < geom.NumLinkDirs; d++ {
			linkFlits += h.LinkFlits[id][d]
		}
	}
	if ej != res.Total.Ejected {
		t.Errorf("heatmap ejections %d != collector total %d", ej, res.Total.Ejected)
	}
	if defl != res.Total.Deflections {
		t.Errorf("heatmap deflections %d != collector total %d", defl, res.Total.Deflections)
	}
	// Every forwarded flit crosses exactly one out-link.
	if routerFlits != linkFlits {
		t.Errorf("router flits %d != link flits %d", routerFlits, linkFlits)
	}
	if routerFlits == 0 {
		t.Error("no traversals recorded — router hook not wired")
	}
}

// TestFlightRecorderShardedDeterministic: under sharded stepping the
// probe ring is drained once per cycle at the barrier, router segment
// by router segment in node order, so the event stream a flight
// recorder consumes — and therefore its dump — is a pure function of
// the run: two identical sharded runs must snapshot identically.
func TestFlightRecorderShardedDeterministic(t *testing.T) {
	record := func() []probe.Event {
		cfg := config.Default(config.SB)
		cfg.Domains = 2
		rec := probe.NewFlightRecorder(256)
		_, err := Run(Options{
			Cfg:      cfg,
			Pattern:  traffic.UniformRandom,
			Sources:  ctrlSources(2, 0.05),
			Warmup:   100,
			Measure:  1000,
			Drain:    20000,
			Seed:     7,
			Recorder: rec,
			Shards:   4,
		})
		if err != nil {
			t.Fatal(err)
		}
		snap := rec.Snapshot()
		if len(snap) == 0 {
			t.Fatal("flight recorder captured nothing")
		}
		return snap
	}
	a, b := record(), record()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical sharded runs produced different flight snapshots (%d vs %d events)", len(a), len(b))
	}
}

// TestProbeIntervalWidths: a measured span that is not a multiple of
// the bucket width ends in a truncated interval, and interval edges
// tile the run without gaps.
func TestProbeIntervalWidths(t *testing.T) {
	cfg := config.Default(config.SB)
	cfg.Domains = 1
	p := &probe.Probe{}
	res, err := Run(Options{
		Cfg:     cfg,
		Pattern: traffic.UniformRandom,
		Sources: ctrlSources(1, 0.05),
		Warmup:  0, Measure: 1250, Drain: 20000,
		Seed:  3,
		Probe: p, ProbeEvery: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	ivs := p.Intervals()
	if len(ivs) < 3 {
		t.Fatalf("got %d intervals, want ≥3", len(ivs))
	}
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Start != ivs[i-1].End {
			t.Errorf("gap between interval %d end %d and %d start %d", i-1, ivs[i-1].End, i, ivs[i].Start)
		}
	}
	last := ivs[len(ivs)-1]
	if last.End != res.Cycles {
		t.Errorf("final interval ends at %d, run simulated %d cycles", last.End, res.Cycles)
	}
	if last.End-last.Start >= 500 && res.Cycles%500 != 0 {
		t.Errorf("trailing interval [%d,%d) not truncated", last.Start, last.End)
	}
}

// TestProbeQuietDomainFlat is the confinement claim, time-resolved: on
// SB, a lightly loaded victim domain's per-interval latency stays flat
// while the other domain is driven into saturation.
func TestProbeQuietDomainFlat(t *testing.T) {
	res, p := probedRun(t, []traffic.Source{
		{Rate: 0.05, Class: packet.Ctrl, VNet: -1},
		{Rate: 0.30, Class: packet.Ctrl, VNet: -1},
	}, 100, 1)

	// The hostile domain must actually saturate: backpressure shows up
	// as refusals and its latency dwarfs the victim's.
	hostile := res.Domains[1]
	if hostile.Refused == 0 {
		t.Fatalf("hostile domain saw no refusals at rate 0.30 — not saturated (%+v)", hostile)
	}
	victim := res.Domains[0]
	if hostile.AvgTotalLatency() < 2*victim.AvgTotalLatency() {
		t.Errorf("hostile latency %.1f not clearly above victim %.1f",
			hostile.AvgTotalLatency(), victim.AvgTotalLatency())
	}

	// Victim per-interval latency: every measured interval stays within
	// 2.5× the run mean — no interference-driven spikes.
	mean := victim.AvgTotalLatency()
	var worst float64
	for _, iv := range p.Intervals() {
		s := iv.Domains[0]
		if s.Ejected == 0 {
			continue
		}
		if m := s.MeanLatency(); m > worst {
			worst = m
		}
	}
	if worst > 2.5*mean {
		t.Errorf("victim interval latency spiked to %.1f (run mean %.1f) despite confinement", worst, mean)
	}
}

// TestRunCachedBypassesForObservers: a probed or traced run must hit
// the simulator even when the cache already holds the point — a cache
// hit would leave the observer empty.
func TestRunCachedBypassesForObservers(t *testing.T) {
	c, err := simcache.New(simcache.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default(config.SB)
	cfg.Domains = 1
	o := Options{
		Cfg:     cfg,
		Pattern: traffic.UniformRandom,
		Sources: ctrlSources(1, 0.05),
		Warmup:  100, Measure: 500, Drain: 20000,
		Seed: 11,
	}
	// Warm the cache with an unobserved run.
	if _, err := RunCached(o, c); err != nil {
		t.Fatal(err)
	}
	p := &probe.Probe{}
	o.Probe = p
	o.ProbeEvery = 100
	res, err := RunCached(o, c)
	if err != nil {
		t.Fatal(err)
	}
	if tot := p.Totals(); len(tot) == 0 || tot[0].Ejected == 0 {
		t.Fatalf("probed RunCached returned an empty probe (totals %+v) — served from cache?", tot)
	}
	if tot := p.Totals(); tot[0].Ejected != res.Domains[0].Ejected {
		t.Errorf("probe ejections %d != result %d", tot[0].Ejected, res.Domains[0].Ejected)
	}
}
