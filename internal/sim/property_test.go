package sim

import (
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/router"
	"surfbless/internal/traffic"
)

// Property-style sweeps: many random configurations, each run with the
// conservation audit live and the SB fabric's wave assertions armed.
// Any domain leak, lost packet or balance violation fails the run.

func pseudo(seed *uint64) uint64 {
	*seed = router.Hash64(*seed, 0x5bd1e995)
	return *seed
}

func TestSBRandomConfigsProperty(t *testing.T) {
	seed := uint64(0xfeed)
	for trial := 0; trial < 12; trial++ {
		n := []int{3, 4, 5, 6, 8}[pseudo(&seed)%5]
		domains := 1 + int(pseudo(&seed)%9)
		cfg := config.Default(config.SB)
		cfg.Width, cfg.Height = n, n
		if domains > cfg.Smax() {
			domains = cfg.Smax()
		}
		cfg.Domains = domains
		rate := 0.02 + float64(pseudo(&seed)%8)/100
		res, err := Run(Options{
			Cfg:     cfg,
			Pattern: traffic.Pattern(pseudo(&seed) % 4),
			Sources: ctrlSources(domains, rate/float64(domains)),
			Warmup:  100, Measure: 800, Drain: 30000,
			Seed:       int64(pseudo(&seed)),
			AuditEvery: 200,
		})
		if err != nil {
			t.Fatalf("trial %d (N=%d D=%d rate=%.2f): %v", trial, n, domains, rate, err)
		}
		if res.LeftInFlight != 0 {
			t.Errorf("trial %d (N=%d D=%d rate=%.2f): %d packets stuck",
				trial, n, domains, rate, res.LeftInFlight)
		}
	}
}

// Non-square meshes are legal for the unscheduled models.
func TestRectangularMeshesProperty(t *testing.T) {
	seed := uint64(0xbeef)
	for trial := 0; trial < 10; trial++ {
		w := 2 + int(pseudo(&seed)%7)
		h := 2 + int(pseudo(&seed)%7)
		for _, m := range []config.Model{config.BLESS, config.WH, config.CHIPPER} {
			cfg := config.Default(m)
			cfg.Width, cfg.Height = w, h
			res, err := Run(Options{
				Cfg:     cfg,
				Pattern: traffic.UniformRandom,
				Sources: ctrlSources(1, 0.04),
				Warmup:  100, Measure: 600, Drain: 30000,
				Seed:       int64(pseudo(&seed)),
				AuditEvery: 300,
			})
			if err != nil {
				t.Fatalf("%v %dx%d: %v", m, w, h, err)
			}
			if res.LeftInFlight != 0 {
				t.Errorf("%v %dx%d: %d stuck", m, w, h, res.LeftInFlight)
			}
			if res.Total.Ejected == 0 {
				t.Errorf("%v %dx%d: nothing delivered", m, w, h)
			}
		}
	}
}

// The hop-delay parameter generalizes: SB works for P ∈ {2,3,4,5}
// (different pipeline depths), with Smax scaling as 2·P·(N−1).
func TestSBHopDelayProperty(t *testing.T) {
	for _, pipe := range []int{1, 2, 3, 4} {
		cfg := config.Default(config.SB)
		cfg.BufferlessPipeline = pipe // P = pipe + 1 link cycle
		cfg.Domains = 2
		res, err := Run(Options{
			Cfg:     cfg,
			Pattern: traffic.UniformRandom,
			Sources: ctrlSources(2, 0.02),
			Warmup:  100, Measure: 800, Drain: 30000,
			Seed:       5,
			AuditEvery: 200,
		})
		if err != nil {
			t.Fatalf("P=%d: %v", pipe+1, err)
		}
		if res.LeftInFlight != 0 || res.Total.Ejected == 0 {
			t.Errorf("P=%d: delivery broken (%d stuck, %d delivered)",
				pipe+1, res.LeftInFlight, res.Total.Ejected)
		}
	}
}

// Percentile results are coherent: p50 ≤ p99 ≤ max for every domain.
func TestLatencyPercentilesCoherent(t *testing.T) {
	cfg := config.Default(config.SB)
	cfg.Domains = 3
	res, err := Run(Options{
		Cfg:     cfg,
		Pattern: traffic.UniformRandom,
		Sources: ctrlSources(3, 0.02),
		Warmup:  200, Measure: 2000, Drain: 20000,
		Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		p50, p99 := res.LatencyP50[d], res.LatencyP99[d]
		max := res.Domains[d].MaxTotalLatency
		if p50 <= 0 || p50 > p99 || p99 > 2*max+1 {
			t.Errorf("domain %d: incoherent percentiles p50=%d p99=%d max=%d", d, p50, p99, max)
		}
	}
}
