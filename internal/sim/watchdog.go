package sim

import (
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/stats"
)

// Watchdog thresholds applied when a fault plan is armed and the
// corresponding Options field is zero.  Fault-free runs default to no
// watchdog at all: every shipped fabric is livelock-free without
// faults (deflection priority, golden packet, retransmission timers),
// so the checks would only cost cycles.
const (
	// DefaultWatchdogNoProgress is the auto no-progress ceiling: if no
	// packet resolves (ejects or drops) for this many cycles while the
	// network holds traffic, the run is declared degraded.
	DefaultWatchdogNoProgress = 20000
	// DefaultWatchdogMaxAge is the auto per-packet age ceiling: some
	// packet staying unresolved this long (even while others progress)
	// declares starvation.
	DefaultWatchdogMaxAge = 100000

	// watchdogCheckMask gates the real work to every 1024th cycle so
	// the per-cycle cost is a mask test and a branch.
	watchdogCheckMask = 1<<10 - 1
)

// ageSample records the created-packet count at a checkpoint cycle;
// the watchdog keeps a FIFO of them to bound packet age without
// tracking individual packets.
type ageSample struct {
	cycle   int64
	created int64
}

// watchdog detects livelock (global no-progress) and starvation (one
// packet left behind) during a run.  Both checks read only collector
// counters, never fabric internals, so one implementation covers every
// model.
type watchdog struct {
	noProgress int64 // 0 = check disabled
	maxAge     int64 // 0 = check disabled

	// wedgeProne marks the blocking fabrics (WH, Surf) running under an
	// armed fault plan: their packets have no deflection escape from a
	// killed link or frozen router, so a watchdog trip is classified as
	// a permanent fault-wedge rather than livelock/starvation (see
	// DegradedKind).
	wedgeProne bool

	lastResolved int64 // ejected+dropped at the last change
	lastChange   int64 // cycle of the last resolution-count change

	samples    []ageSample // pending checkpoints, oldest first
	oldCreated int64       // lower bound on packets created ≥ maxAge ago
}

// newWatchdog resolves the Options thresholds: 0 means auto (defaults
// when a fault plan is armed, disabled otherwise), negative means
// always disabled.  Returns nil when both checks end up disabled.
func newWatchdog(o Options) *watchdog {
	armed := !o.Cfg.Faults.Empty()
	resolve := func(v, def int64) int64 {
		switch {
		case v < 0:
			return 0
		case v == 0 && !armed:
			return 0
		case v == 0:
			return def
		}
		return v
	}
	np := resolve(o.WatchdogNoProgress, DefaultWatchdogNoProgress)
	ma := resolve(o.WatchdogMaxAge, DefaultWatchdogMaxAge)
	if np == 0 && ma == 0 {
		return nil
	}
	wedge := armed && (o.Cfg.Model == config.WH || o.Cfg.Model == config.Surf)
	return &watchdog{noProgress: np, maxAge: ma, wedgeProne: wedge}
}

// check inspects progress at cycle now and returns a DegradedError
// (without Partial — Run fills that in) once the network is wedged or
// starving a packet.  Called every cycle; does real work every 1024th.
func (w *watchdog) check(col *stats.Collector, inFlight int, now int64) error {
	if now&watchdogCheckMask != 0 {
		return nil
	}
	resolved := col.AllEjected + col.AllDropped
	if w.noProgress > 0 {
		if resolved != w.lastResolved {
			w.lastResolved = resolved
			w.lastChange = now
		} else if inFlight > 0 && now-w.lastChange >= w.noProgress {
			kind := KindLivelock
			if w.wedgeProne {
				kind = KindFaultWedge
			}
			return &DegradedError{
				Reason: fmt.Sprintf("%v: no packet resolved for %d cycles with %d in flight",
					kind, now-w.lastChange, inFlight),
				Kind:  kind,
				Cycle: now,
			}
		}
	}
	if w.maxAge > 0 {
		w.samples = append(w.samples, ageSample{cycle: now, created: col.AllCreated})
		for len(w.samples) > 0 && w.samples[0].cycle <= now-w.maxAge {
			w.oldCreated = w.samples[0].created
			w.samples = w.samples[1:]
		}
		// Pigeonhole: fewer packets resolved overall than were created
		// maxAge ago ⇒ at least one of those old packets is still
		// unresolved.  (The converse does not hold — young resolutions
		// can mask one old straggler — so this is a conservative check.)
		if resolved < w.oldCreated {
			kind := KindStarvation
			if w.wedgeProne {
				kind = KindFaultWedge
			}
			return &DegradedError{
				Reason: fmt.Sprintf("%v: a packet created over %d cycles ago is still unresolved", kind, w.maxAge),
				Kind:   kind,
				Cycle:  now,
			}
		}
	}
	return nil
}
