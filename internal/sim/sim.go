// Package sim is the synthetic-workload simulator façade: it builds the
// fabric selected by the configuration (WH, BLESS, Surf or SB), drives
// it with a traffic generator through warm-up / measurement / drain
// phases, and returns the per-domain statistics and the energy report —
// everything the §5.1 experiments need.
package sim

import (
	"context"
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/fault"
	"surfbless/internal/network"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/probe"
	"surfbless/internal/router/bless"
	"surfbless/internal/router/chipper"
	"surfbless/internal/router/runahead"
	"surfbless/internal/router/surf"
	"surfbless/internal/router/surfbless"
	"surfbless/internal/router/wormhole"
	"surfbless/internal/stats"
	"surfbless/internal/traffic"
)

// Options configures one synthetic run.
type Options struct {
	Cfg     config.Config
	Pattern traffic.Pattern
	// Sources gives each domain's injection process; its length must
	// equal Cfg.Domains.
	Sources []traffic.Source
	// SlotWidths is the per-domain wave-window length for SB (nil = 1).
	SlotWidths []int

	Warmup  int64 // cycles of unmeasured traffic before the window
	Measure int64 // cycles of measured traffic
	Drain   int64 // max cycles to let in-flight packets finish

	Seed int64

	// AuditEvery runs the fabric's conservation audit every N cycles
	// (0 disables).  Tests use it; experiment harnesses leave it off.
	AuditEvery int64

	// WatchdogNoProgress and WatchdogMaxAge configure the graceful-
	// degradation watchdog (see watchdog.go): the run is cut short with
	// a DegradedError when no packet resolves for WatchdogNoProgress
	// cycles while traffic is in flight, or when some packet stays
	// unresolved for WatchdogMaxAge cycles.  0 = auto: the defaults
	// when a fault plan is armed, disabled otherwise (fault-free
	// fabrics are livelock-free by construction).  Negative = always
	// disabled.  Deliberately fingerprinted — a tripping watchdog
	// changes the run's outcome.
	WatchdogNoProgress int64 `json:",omitempty"`
	WatchdogMaxAge     int64 `json:",omitempty"`

	// Coefficients overrides the energy model (nil = Default45nm).
	Coefficients *power.Coefficients

	// Probe, when non-nil, is armed for this run (interval ProbeEvery,
	// window [Warmup, Warmup+Measure)) and receives the run's lifecycle
	// and router hot-path events — time series, heatmaps, occupancy.
	// Observation never changes results, so the field is excluded from
	// the cache fingerprint; RunCached still bypasses the cache for
	// probed runs because a cache hit would leave the probe empty.
	Probe *probe.Probe `json:"-"`
	// ProbeEvery is the probe's time-series bucket width in cycles
	// (≤0 = probe.DefaultEvery).  Ignored without a Probe.
	ProbeEvery int64 `json:"-"`

	// Taps are attached to the run's probe after arming (Arm detaches
	// taps, so pre-attaching to Probe would be lost): each drained ring
	// batch fans out to them in order — span exporters
	// (trace.Perfetto), custom aggregators.  Requires an event source
	// like Recorder: when Probe is nil, Run arms a private probe.
	// Observation-only and fingerprint-exempt.
	Taps []probe.Tap `json:"-"`

	// Recorder, when non-nil, is attached as a flight recorder: it
	// retains the run's trailing event window and, when the run degrades
	// (watchdog trip or recovered invariant panic), its snapshot is
	// attached to the DegradedError as a replayable forensic dump.
	// Requires an event source: when Probe is nil, Run arms a private
	// probe just to feed the recorder.  Observation-only and
	// fingerprint-exempt like Probe.
	Recorder *probe.FlightRecorder `json:"-"`

	// Tracer, when non-nil, is installed on the run's collector and
	// sees every packet lifecycle event (see stats.Tracer).  Like
	// Probe, it is observation-only and fingerprint-exempt; RunCached
	// bypasses the cache for traced runs.
	Tracer stats.Tracer `json:"-"`

	// Flows, when non-nil, receives every delivered packet's per-flow
	// (src,dst,domain) latency maxima — the observed p100 the wcta
	// conformance oracle compares against analytical bounds.  Like
	// Probe and Tracer it is observation-only and fingerprint-exempt;
	// RunCached bypasses the cache so the tracker is actually filled.
	Flows *stats.FlowTracker `json:"-"`

	// Ctx, when non-nil, lets the caller cancel a run mid-flight: the
	// cycle loop polls it on the watchdog's cadence (every 1024th
	// cycle) and returns a CanceledError wrapping ctx.Err() — the sweep
	// service's per-point timeouts and worker drains ride on it.  A
	// cancelled run carries partial statistics on the error (and returns
	// them as the Result) with MeasuredCycles clamped to the window the
	// run actually covered — zero when cancellation lands inside warm-up
	// — so harnesses that record the point anyway never divide by the
	// full measure window.  Cancellation is an execution-control
	// concern, not a simulation parameter, so the field is
	// fingerprint-exempt like the observers.
	Ctx context.Context `json:"-"`

	// Recycle arms a packet free list: ejected packets are returned to
	// the traffic generator and reused, making steady-state stepping
	// allocation-free (DESIGN.md §12).  Results are bit-identical with
	// or without recycling — FreeList.New resets every field — so the
	// option is fingerprint-exempt.  Ignored for RUNAHEAD, whose retry
	// timers legitimately hold packet pointers past ejection.
	Recycle bool `json:"-"`

	// Shards > 1 partitions the mesh into that many contiguous node
	// tiles stepped in parallel by a persistent worker pool (fabrics
	// without sharded stepping silently ignore it; the tile count is
	// clamped to the node count).  The two-phase barrier schedule is
	// bit-identical to serial stepping — see DESIGN.md §17 — so the
	// option is fingerprint-exempt like Recycle.  Ignored while fault
	// injection is armed (recovery paths force serial stepping).
	Shards int `json:"-"`
}

// Observed reports whether the run carries an observer that requires a
// real simulation (a probe, a tracer or a flow tracker): cached
// results cannot replay the events such observers consume.
func (o Options) Observed() bool {
	return o.Probe != nil || o.Recorder != nil || len(o.Taps) > 0 ||
		o.Tracer != nil || o.Flows != nil
}

// Result is one run's outcome.
type Result struct {
	Domains []stats.Domain
	Total   stats.Domain
	Energy  power.Energy

	// LatencyP50 and LatencyP99 are per-domain total-latency percentile
	// bounds (power-of-two-bucket histograms; see stats.Histogram).
	LatencyP50 []int64
	LatencyP99 []int64

	Cycles         int64 // cycles actually simulated (incl. drain)
	MeasuredCycles int64
	Nodes          int
	LeftInFlight   int // packets still in flight after the drain budget
}

// Throughput returns domain d's accepted rate in packets/node/cycle
// over the measurement window.
func (r Result) Throughput(d int) float64 {
	if r.MeasuredCycles == 0 {
		return 0
	}
	return float64(r.Domains[d].Ejected) / float64(r.Nodes) / float64(r.MeasuredCycles)
}

// probeSetter is implemented by every fabric that exposes router
// hot-path events (traversals, deflections, link flits) to a probe.
type probeSetter interface {
	SetProbe(*probe.Probe)
}

// faultSetter is implemented by every fabric that accepts a fault
// injector on its hot path (mirroring probeSetter).
type faultSetter interface {
	SetFaults(*fault.Injector)
}

// shardSetter is implemented by every fabric that can step its mesh in
// parallel tiles (mirroring probeSetter).
type shardSetter interface {
	SetShards(n int) error
	StopShards()
}

// BuildFabric constructs the fabric for cfg.Model.  slotWidths applies
// to SB only.
func BuildFabric(cfg config.Config, slotWidths []int, sink network.Sink,
	col *stats.Collector, meter *power.Meter) (network.Fabric, error) {
	switch cfg.Model {
	case config.WH:
		return wormhole.New(wormhole.Options{
			Cfg: cfg,
			VCs: wormhole.SharedVCs(cfg),
			Key: wormhole.KeyNone,
		}, sink, col, meter)
	case config.BLESS:
		return bless.New(cfg, sink, col, meter)
	case config.Surf:
		return surf.New(cfg, sink, col, meter)
	case config.SB:
		return surfbless.New(cfg, slotWidths, sink, col, meter)
	case config.CHIPPER:
		return chipper.New(cfg, sink, col, meter)
	case config.RUNAHEAD:
		return runahead.New(cfg, sink, col, meter)
	default:
		return nil, fmt.Errorf("sim: unknown model %v", cfg.Model)
	}
}

// Run executes one synthetic simulation.
func Run(o Options) (Result, error) {
	if err := o.Cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(o.Sources) != o.Cfg.Domains {
		return Result{}, fmt.Errorf("sim: %d sources for %d domains", len(o.Sources), o.Cfg.Domains)
	}
	if o.Measure <= 0 {
		return Result{}, fmt.Errorf("sim: Measure must be positive")
	}
	if o.Warmup < 0 || o.Drain < 0 {
		return Result{}, fmt.Errorf("sim: negative phase length")
	}

	co := power.Default45nm()
	if o.Coefficients != nil {
		co = *o.Coefficients
	}
	col := stats.NewCollector(o.Cfg.Domains, o.Warmup, o.Warmup+o.Measure)
	if o.Tracer != nil {
		col.SetTracer(o.Tracer)
	}
	if o.Flows != nil {
		col.SetFlowTracker(o.Flows)
	}
	if (o.Recorder != nil || len(o.Taps) > 0) && o.Probe == nil {
		// Recorders and taps need an event source; arm a private probe
		// so callers can observe without also wanting time series.
		o.Probe = &probe.Probe{}
	}
	if o.Probe != nil {
		o.Probe.Arm(probe.Config{
			Mesh:       o.Cfg.Mesh(),
			Domains:    o.Cfg.Domains,
			Every:      o.ProbeEvery,
			WarmupEnd:  o.Warmup,
			MeasureEnd: o.Warmup + o.Measure,
		})
		col.SetProbe(o.Probe)
		if o.Recorder != nil {
			o.Recorder.Reset()
			o.Probe.AttachTap(o.Recorder)
		}
		for _, tap := range o.Taps {
			o.Probe.AttachTap(tap)
		}
	}
	meter := power.NewMeter(o.Cfg, co)
	var sink network.Sink
	var fl *packet.FreeList
	if o.Recycle && o.Cfg.Model != config.RUNAHEAD {
		// RUNAHEAD is excluded: its retransmission timers keep packet
		// pointers armed after ejection and later read EjectedAt, so a
		// recycled (reset) packet would trigger a spurious retransmit.
		fl = &packet.FreeList{}
		sink = func(_ int, p *packet.Packet, _ int64) { fl.Put(p) }
	}
	fab, err := BuildFabric(o.Cfg, o.SlotWidths, sink, col, meter)
	if err != nil {
		return Result{}, err
	}
	if o.Probe != nil {
		if ps, ok := fab.(probeSetter); ok {
			ps.SetProbe(o.Probe)
		}
	}
	if inj := fault.NewInjector(o.Cfg.Faults, o.Cfg.Width, o.Cfg.Height); inj != nil {
		fs, ok := fab.(faultSetter)
		if !ok {
			return Result{}, fmt.Errorf("sim: %v fabric does not support fault injection", o.Cfg.Model)
		}
		fs.SetFaults(inj)
	}
	if o.Shards > 1 {
		if ss, ok := fab.(shardSetter); ok {
			if err := ss.SetShards(o.Shards); err != nil {
				return Result{}, err
			}
			defer ss.StopShards()
		}
	}
	gen := traffic.New(o.Cfg.Mesh(), o.Pattern, o.Sources, o.Seed)
	if fl != nil {
		gen.SetFreeList(fl)
	}

	now := int64(0)
	loopErr := runLoop(o, fab, gen, col, &now)
	// Push the ring's trailing events through to the taps so a flight
	// snapshot (and any span exporter) sees right up to the last cycle.
	if o.Probe != nil {
		o.Probe.Flush()
	}

	snapshot := func() Result {
		res := Result{
			Domains:    make([]stats.Domain, o.Cfg.Domains),
			LatencyP50: make([]int64, o.Cfg.Domains),
			LatencyP99: make([]int64, o.Cfg.Domains),
			Total:      col.Total(),
			Energy:     meter.Report(now),
			Cycles:     now,
			// A degraded run can end mid-measurement (or even mid-warmup),
			// so the measured-cycle count is clamped to the window the run
			// actually covered; Throughput would otherwise divide by the
			// full o.Measure and under-report accepted rate.
			MeasuredCycles: max(0, min(now, o.Warmup+o.Measure)-o.Warmup),
			Nodes:          o.Cfg.Nodes(),
			LeftInFlight:   fab.InFlight(),
		}
		for d := 0; d < o.Cfg.Domains; d++ {
			res.Domains[d] = col.Domain(d)
			res.LatencyP50[d] = col.Latency(d).Percentile(0.5)
			res.LatencyP99[d] = col.Latency(d).Percentile(0.99)
		}
		return res
	}

	if loopErr != nil {
		// Degradation paths carry partial statistics so sweep harnesses
		// can record the point and continue; everything else (audit
		// failures, collector misuse) stays a plain error.
		flight := func(reason string, cycle int64) *probe.FlightDump {
			if o.Recorder == nil {
				return nil
			}
			return o.Recorder.Dump(reason, cycle, o.Cfg.Model.String(), o.Cfg.Mesh(), o.Cfg.Domains)
		}
		switch e := loopErr.(type) {
		case *DegradedError:
			e.Partial = snapshot()
			e.Flight = flight(e.Reason, e.Cycle)
			return e.Partial, e
		case *InvariantViolation:
			de := &DegradedError{Reason: "invariant: recovered fabric panic", Kind: KindInvariant, Cycle: e.Cycle, Cause: e}
			de.Partial = snapshot()
			de.Flight = flight(de.Reason, de.Cycle)
			return de.Partial, de
		case *CanceledError:
			// A canceled run reports the window it actually covered, just
			// like a degraded one: snapshot() clamps MeasuredCycles (zero
			// when the cancellation landed inside warm-up), so a harness
			// recording the point anyway sees honest rates, not statistics
			// scaled to a window that never ran.
			e.Partial = snapshot()
			return e.Partial, e
		default:
			return Result{}, loopErr
		}
	}
	if o.AuditEvery > 0 {
		if err := fab.Audit(); err != nil {
			return Result{}, err
		}
		if err := col.CheckConservation(fab.InFlight()); err != nil {
			return Result{}, err
		}
	}
	if err := col.Err(); err != nil {
		return Result{}, err
	}
	return snapshot(), nil
}

// runLoop drives the warm-up/measure/drain cycle loop.  It is split
// from Run so that one recover boundary wraps exactly the stepping
// code: a fabric invariant panic becomes a typed *InvariantViolation
// carrying the cycle it happened in, which Run converts into a
// DegradedError with partial statistics.
func runLoop(o Options, fab network.Fabric, gen *traffic.Generator,
	col *stats.Collector, now *int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &InvariantViolation{Cycle: *now, Msg: fmt.Sprint(r)}
		}
	}()
	wd := newWatchdog(o)
	// Cancellation poll: the Done channel is hoisted out of the loop
	// (acquiring it can allocate for derived contexts) and consulted on
	// the watchdog's cadence, so an un-cancelled run pays one mask test
	// and a nil compare per cycle.
	var ctxDone <-chan struct{}
	if o.Ctx != nil {
		ctxDone = o.Ctx.Done()
	}
	step := func() error {
		fab.Step(*now)
		if o.Probe != nil {
			o.Probe.Tick(*now, fab.InFlight())
		}
		if ctxDone != nil && *now&watchdogCheckMask == 0 {
			select {
			case <-ctxDone:
				return &CanceledError{Cycle: *now, Cause: o.Ctx.Err()}
			default:
			}
		}
		if o.AuditEvery > 0 && *now%o.AuditEvery == 0 {
			if err := fab.Audit(); err != nil {
				return err
			}
		}
		if wd != nil {
			if err := wd.check(col, fab.InFlight(), *now); err != nil {
				return err
			}
		}
		return nil
	}
	genEnd := o.Warmup + o.Measure
	for ; *now < genEnd; *now++ {
		gen.Tick(fab, *now)
		if err := step(); err != nil {
			return err
		}
	}
	// Drain: no new traffic; stop early once the network is empty.
	// The conservation audit keeps its cadence here too — drain-phase
	// invariant violations must not go unnoticed.
	drainEnd := genEnd + o.Drain
	for ; *now < drainEnd && fab.InFlight() > 0; *now++ {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}
