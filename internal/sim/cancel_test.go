package sim

import (
	"context"
	"errors"
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/fault"
	"surfbless/internal/traffic"
)

// A run whose context is already cancelled must stop at the first poll
// point and surface the cancellation as a typed CanceledError wrapping
// context.Canceled — the sweep service's drain path.
func TestRunCanceledContextStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(Options{
		Cfg:     config.Default(config.SB),
		Pattern: traffic.UniformRandom,
		Sources: ctrlSources(1, 0.05),
		Warmup:  100,
		Measure: 1 << 20, // far more cycles than a test should simulate
		Drain:   1 << 20,
		Seed:    1,
		Ctx:     ctx,
	})
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("expected CanceledError, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want errors.Is(err, context.Canceled)", err)
	}
	if ce.Cycle > 2048 {
		t.Errorf("cancellation observed at cycle %d, want within two poll intervals", ce.Cycle)
	}
}

// A deadline trip must be distinguishable from a drain cancellation:
// the worker maps DeadlineExceeded to a per-point timeout status.
func TestRunContextDeadlineIsTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	_, err := Run(Options{
		Cfg:     config.Default(config.SB),
		Pattern: traffic.UniformRandom,
		Sources: ctrlSources(1, 0.05),
		Warmup:  100,
		Measure: 1 << 20,
		Drain:   1 << 20,
		Seed:    1,
		Ctx:     ctx,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want errors.Is(err, context.DeadlineExceeded)", err)
	}
}

// A nil context must leave results bit-identical to an un-cancelled
// context: the poll is observation-only.
func TestRunContextIsResultNeutral(t *testing.T) {
	base := Options{
		Cfg:     config.Default(config.SB),
		Pattern: traffic.UniformRandom,
		Sources: ctrlSources(1, 0.05),
		Warmup:  100,
		Measure: 1000,
		Drain:   4000,
		Seed:    5,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	withCtx := base
	withCtx.Ctx = context.Background()
	ctxRes, err := Run(withCtx)
	if err != nil {
		t.Fatalf("ctx run: %v", err)
	}
	if plain.Total != ctxRes.Total || plain.Cycles != ctxRes.Cycles {
		t.Errorf("context poll changed results:\nplain: %+v\nctx:   %+v", plain.Total, ctxRes.Total)
	}
}

// A no-progress trip on a deflecting fabric stays classified as
// livelock, not fault-wedge: only the blocking fabrics (WH/Surf) wedge
// permanently under faults.
func TestWatchdogLivelockKindOnDeflectingFabric(t *testing.T) {
	cfg := config.Default(config.BLESS)
	cfg.Width, cfg.Height = 4, 4
	events := make([]fault.Event, cfg.Nodes())
	for i := range events {
		events[i] = fault.Event{Kind: fault.RouterFreeze, Node: i, At: 500}
	}
	cfg.Faults = &fault.Plan{Events: events}
	_, err := Run(Options{
		Cfg:                cfg,
		Pattern:            traffic.UniformRandom,
		Sources:            ctrlSources(1, 0.05),
		Warmup:             100,
		Measure:            20000,
		Drain:              20000,
		Seed:               3,
		WatchdogNoProgress: 3000,
		WatchdogMaxAge:     -1,
	})
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("expected DegradedError, got %v", err)
	}
	if de.Kind != KindLivelock {
		t.Errorf("Kind = %v, want %v on a deflecting fabric", de.Kind, KindLivelock)
	}
	if de.Kind.Permanent() {
		t.Errorf("livelock must not classify as permanent")
	}
}
