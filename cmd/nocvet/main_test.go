package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"surfbless/internal/analysis"
)

// runCLI drives the real CLI entry point against the testdata module.
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"-C", "testdata"}, args...), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestListExitsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, stderr.String())
	}
	for _, a := range analyzers {
		if !bytes.Contains(stdout.Bytes(), []byte(a.Name)) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}
}

func TestFindingsFailAndPrint(t *testing.T) {
	code, stdout, stderr := runCLI(t, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (the testdata module has one deliberate finding); stderr: %s", code, stderr)
	}
	if !bytes.Contains([]byte(stdout), []byte("make allocates")) {
		t.Errorf("text listing missing the hotalloc finding:\n%s", stdout)
	}
}

// TestJSONByteStable is the acceptance criterion: two runs over the
// same tree produce byte-identical machine output, and it round-trips
// through the Report schema.
func TestJSONByteStable(t *testing.T) {
	code1, out1, _ := runCLI(t, "-json", "./...")
	code2, out2, _ := runCLI(t, "-json", "./...")
	if code1 != 1 || code2 != 1 {
		t.Fatalf("exits = %d, %d, want 1, 1", code1, code2)
	}
	if out1 != out2 {
		t.Fatalf("-json output differs across runs:\n--- run 1\n%s\n--- run 2\n%s", out1, out2)
	}
	var r analysis.Report
	if err := json.Unmarshal([]byte(out1), &r); err != nil {
		t.Fatalf("-json output is not a Report: %v", err)
	}
	if r.Version != analysis.ReportVersion || len(r.Findings) != 1 {
		t.Fatalf("report = %+v, want version %d with exactly 1 finding", r, analysis.ReportVersion)
	}
	f := r.Findings[0]
	if f.Analyzer != "hotalloc" || f.File != "pkg/pkg.go" || f.ID == "" {
		t.Errorf("finding = %+v, want a hotalloc finding in pkg/pkg.go with a stable ID", f)
	}
}

func TestSARIFByteStable(t *testing.T) {
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a.sarif"), filepath.Join(dir, "b.sarif")
	runCLI(t, "-sarif", p1, "./...")
	runCLI(t, "-sarif", p2, "./...")
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("SARIF output differs across runs")
	}
	var log struct {
		Version string `json:"version"`
	}
	if err := json.Unmarshal(b1, &log); err != nil || log.Version != "2.1.0" {
		t.Errorf("SARIF log malformed (version %q, err %v)", log.Version, err)
	}
}

// TestBaselineFlow exercises the ratchet: -write-baseline records the
// current findings, after which -baseline passes; a baseline missing
// the finding fails with exactly it reported as new.
func TestBaselineFlow(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")
	if code, _, stderr := runCLI(t, "-write-baseline", "-baseline", base, "./..."); code != 0 {
		t.Fatalf("-write-baseline exited %d, stderr: %s", code, stderr)
	}
	if code, stdout, stderr := runCLI(t, "-baseline", base, "./..."); code != 0 {
		t.Fatalf("against a full baseline: exit %d, stdout %q, stderr %q", code, stdout, stderr)
	}

	if err := os.WriteFile(base, []byte(`{"version": 1, "findings": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(t, "-baseline", base, "./...")
	if code != 1 {
		t.Fatalf("against an empty baseline: exit %d, want 1; stderr: %s", code, stderr)
	}
	if !bytes.Contains([]byte(stdout), []byte("make allocates")) {
		t.Errorf("new-finding listing missing the hotalloc finding:\n%s", stdout)
	}
}
