// Command nocvet is the multichecker driver for this repository's
// custom static analyzers (see internal/analysis and DESIGN.md §13):
//
//	hotalloc          no heap allocation reachable from any fabric's Step
//	determinism       no wall clock, global RNG, or unordered map range
//	                  in replay-critical packages
//	fingerprintcheck  every options field feeds the simcache fingerprint
//	                  or carries an explicit json:"-" exemption
//	nilhook           probe/fault/tracer/sink hook calls are nil-guarded
//
// Usage:
//
//	nocvet [-list] [packages...]
//
// With no package patterns it analyzes ./... of the module in the
// current directory.  Findings print as file:line:col: [analyzer]
// message; the exit status is 1 when any unsuppressed finding exists
// (including unknown //nocvet: directives), 2 on driver errors.
// Intentional exceptions are waived in source with
// `//nocvet:<category> <why>` — see internal/analysis/directive.go
// for the policy.
//
// Run it over the whole module: hotalloc follows the Step call graph
// across packages and only sees what is loaded.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"surfbless/internal/analysis"
	"surfbless/internal/analysis/determinism"
	"surfbless/internal/analysis/fingerprintcheck"
	"surfbless/internal/analysis/hotalloc"
	"surfbless/internal/analysis/nilhook"
)

// analyzers is the suite `make lint` enforces.
var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	fingerprintcheck.Analyzer,
	hotalloc.Analyzer,
	nilhook.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: nocvet [-list] [packages...]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		printAnalyzers(flag.CommandLine.Output())
	}
	flag.Parse()
	if *list {
		printAnalyzers(os.Stdout)
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset, units, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nocvet: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.RunAnalyzers(fset, units, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nocvet: %v\n", err)
		os.Exit(2)
	}
	if n := analysis.Print(os.Stdout, findings); n > 0 {
		fmt.Fprintf(os.Stderr, "nocvet: %d finding(s) in %d package(s)\n", n, len(units))
		os.Exit(1)
	}
}

func printAnalyzers(w io.Writer) {
	for _, a := range analyzers {
		fmt.Fprintf(w, "  %-17s %s\n", a.Name, a.Doc)
	}
}
