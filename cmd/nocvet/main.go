// Command nocvet is the multichecker driver for this repository's
// custom static analyzers (see internal/analysis and DESIGN.md §13/§18):
//
//	determinism       no wall clock, global RNG, or unordered map range
//	                  in replay-critical packages
//	fingerprintcheck  every options field feeds the simcache fingerprint
//	                  or carries an explicit json:"-" exemption
//	hotalloc          no heap allocation reachable from any fabric's Step
//	                  or //shard:phase function
//	nilhook           calls through //hook:nil-disabled typed fields are
//	                  nil-guarded
//	shardsafe         tile-parallel //shard:phase functions write only
//	                  tile-confined state
//
// Usage:
//
//	nocvet [-C dir] [-list] [-json] [-sarif file]
//	       [-baseline file] [-write-baseline] [packages...]
//
// With no package patterns it analyzes ./... of the module in the
// current (or -C) directory — the full-module run, which additionally
// reports stale //nocvet: waivers (staleness is only meaningful when
// every analyzer has seen every package).  Findings print as
// file:line:col: [analyzer] message; -json replaces that with the
// machine-readable report (stable finding IDs, byte-identical across
// runs), and -sarif additionally writes a SARIF 2.1.0 log for CI
// annotation surfaces.  -baseline suppresses findings whose ID the
// baseline file records, so only new findings fail;
// -write-baseline rewrites that file from the current run.  The exit
// status is 1 when any (new) finding exists, 2 on driver errors.
// Intentional exceptions are waived in source with
// `//nocvet:<category> <why>` — see internal/analysis/directive.go.
//
// Run it over the whole module: hotalloc, shardsafe, and nilhook
// follow calls or marker declarations across packages and only see
// what is loaded.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"surfbless/internal/analysis"
	"surfbless/internal/analysis/determinism"
	"surfbless/internal/analysis/fingerprintcheck"
	"surfbless/internal/analysis/hotalloc"
	"surfbless/internal/analysis/nilhook"
	"surfbless/internal/analysis/shardsafe"
)

// analyzers is the suite `make lint` enforces.
var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	fingerprintcheck.Analyzer,
	hotalloc.Analyzer,
	nilhook.Analyzer,
	shardsafe.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies at the surface so tests can drive
// the CLI end to end: args are the raw command-line arguments, and the
// return value is the process exit status (0 clean, 1 findings, 2
// driver error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nocvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir           = fs.String("C", ".", "analyze the module in `dir`")
		list          = fs.Bool("list", false, "list the analyzers and exit")
		jsonOut       = fs.Bool("json", false, "write the machine-readable JSON report to stdout instead of the text listing")
		sarifPath     = fs.String("sarif", "", "also write a SARIF 2.1.0 log to `file`")
		baselinePath  = fs.String("baseline", "", "fail only on findings absent from baseline `file`")
		writeBaseline = fs.Bool("write-baseline", false, "rewrite the -baseline file (default nocvet.baseline.json) from this run and exit 0")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: nocvet [flags] [packages...]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nanalyzers:\n")
		printAnalyzers(fs.Output())
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		printAnalyzers(stdout)
		return 0
	}
	if *writeBaseline && *baselinePath == "" {
		*baselinePath = "nocvet.baseline.json"
	}

	patterns := fs.Args()
	full := len(patterns) == 0 || (len(patterns) == 1 && patterns[0] == "./...")
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset, units, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "nocvet: %v\n", err)
		return 2
	}
	// Stale-waiver reporting needs the whole module analyzed: on a
	// subset run an unexercised waiver is not evidence of anything.
	findings, err := analysis.RunAnalyzersWith(fset, units, analyzers, analysis.Options{ReportStale: full})
	if err != nil {
		fmt.Fprintf(stderr, "nocvet: %v\n", err)
		return 2
	}

	root, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "nocvet: %v\n", err)
		return 2
	}
	report := analysis.NewReport(root, findings)

	if *sarifPath != "" {
		var buf bytes.Buffer
		if err := report.WriteSARIF(&buf, analyzers); err == nil {
			err = os.WriteFile(*sarifPath, buf.Bytes(), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "nocvet: writing SARIF: %v\n", err)
			return 2
		}
	}

	if *writeBaseline {
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf); err == nil {
			err = os.WriteFile(joinIfRelative(root, *baselinePath), buf.Bytes(), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "nocvet: writing baseline: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "nocvet: baseline %s records %d finding(s)\n", *baselinePath, len(report.Findings))
		return 0
	}

	// fresh is what fails the run: everything, or — against a baseline —
	// only findings whose ID the baseline does not record.
	fresh := report.Findings
	if *baselinePath != "" {
		base, err := analysis.LoadBaseline(joinIfRelative(root, *baselinePath))
		if err != nil {
			fmt.Fprintf(stderr, "nocvet: loading baseline: %v\n", err)
			return 2
		}
		fresh = analysis.NewAgainstBaseline(report, base)
	}

	if *jsonOut {
		// The full report, baseline-independent: consumers diff it
		// themselves, and two runs over the same tree are byte-identical.
		if err := report.WriteJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "nocvet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range fresh {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", filepath.Join(root, filepath.FromSlash(f.File)), f.Line, f.Column, f.Analyzer, f.Message)
		}
	}
	if len(fresh) > 0 {
		what := "finding(s)"
		if *baselinePath != "" {
			what = "finding(s) not in baseline"
		}
		fmt.Fprintf(stderr, "nocvet: %d %s in %d package(s)\n", len(fresh), what, len(units))
		return 1
	}
	return 0
}

// joinIfRelative anchors a relative path at the module root so
// -baseline works the same with and without -C.
func joinIfRelative(root, path string) string {
	if filepath.IsAbs(path) {
		return path
	}
	return filepath.Join(root, path)
}

func printAnalyzers(w io.Writer) {
	for _, a := range analyzers {
		fmt.Fprintf(w, "  %-17s %s\n", a.Name, a.Doc)
	}
}
