module nocvet.example

go 1.22
