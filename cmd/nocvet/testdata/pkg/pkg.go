// Package pkg is cmd/nocvet CLI-test fodder: one deliberate hotalloc
// finding (the make below is reachable from Step) and nothing else.
package pkg

// Fabric is a minimal stand-in for a stepping fabric.
type Fabric struct{ buf []int }

// Step allocates every cycle — the finding the CLI tests assert on.
func (f *Fabric) Step(now int64) { f.buf = make([]int, 8) }
