// Command sweep runs an injection-rate sweep for one network model and
// emits the latency/throughput curve as CSV on stdout — the raw data
// behind load-latency plots like Fig. 7.
//
// Usage:
//
//	sweep [-model SB] [-domains 2] [-from 0.01] [-to 0.3] [-step 0.02]
//	      [-cycles 10000] [-seed 1] [-cache] [-cache-dir DIR] [-no-cache]
//
// Points are cached content-addressed under -cache-dir (default
// results/.simcache), shared with cmd/experiments; -no-cache forces
// fresh simulations.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"surfbless/internal/config"
	"surfbless/internal/packet"
	"surfbless/internal/sim"
	"surfbless/internal/simcache"
	"surfbless/internal/traffic"
)

func main() {
	model := flag.String("model", "SB", "network model: WH, BLESS, Surf or SB")
	domains := flag.Int("domains", 2, "number of interference domains")
	from := flag.Float64("from", 0.01, "first total injection rate")
	to := flag.Float64("to", 0.30, "last total injection rate")
	step := flag.Float64("step", 0.02, "rate increment")
	cycles := flag.Int64("cycles", 10000, "measured cycles per point")
	seed := flag.Int64("seed", 1, "random seed")
	useCache := flag.Bool("cache", true, "reuse cached simulation results")
	cacheDir := flag.String("cache-dir", filepath.Join("results", ".simcache"), "result-cache directory")
	noCache := flag.Bool("no-cache", false, "run every simulation fresh (overrides -cache)")
	flag.Parse()

	var cache *simcache.Cache
	if *useCache && !*noCache {
		var err error
		if cache, err = simcache.New(simcache.Options{Dir: *cacheDir}); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	}

	var m config.Model
	switch *model {
	case "WH", "wh":
		m = config.WH
	case "BLESS", "bless":
		m = config.BLESS
	case "Surf", "surf":
		m = config.Surf
	case "SB", "sb":
		m = config.SB
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown model %q\n", *model)
		os.Exit(1)
	}
	if *step <= 0 || *from <= 0 || *to < *from {
		fmt.Fprintln(os.Stderr, "sweep: invalid rate range")
		os.Exit(1)
	}

	fmt.Println("rate,avg_latency,queue_latency,network_latency,throughput,deflections_per_pkt,refused")
	for rate := *from; rate <= *to+1e-9; rate += *step {
		cfg := config.Default(m)
		cfg.Domains = *domains
		sources := make([]traffic.Source, *domains)
		for i := range sources {
			sources[i] = traffic.Source{Rate: rate / float64(*domains), Class: packet.Ctrl, VNet: -1}
		}
		res, err := sim.RunCached(sim.Options{
			Cfg:     cfg,
			Pattern: traffic.UniformRandom,
			Sources: sources,
			Warmup:  *cycles / 10, Measure: *cycles, Drain: 10 * *cycles,
			Seed: *seed,
		}, cache)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: rate %.3f: %v\n", rate, err)
			os.Exit(1)
		}
		tot := res.Total
		thr := 0.0
		for d := 0; d < *domains; d++ {
			thr += res.Throughput(d)
		}
		fmt.Printf("%.3f,%.3f,%.3f,%.3f,%.4f,%.3f,%d\n",
			rate, tot.AvgTotalLatency(), tot.AvgQueueLatency(), tot.AvgNetworkLatency(),
			thr, tot.AvgDeflections(), tot.Refused)
	}
	if cache != nil {
		fmt.Fprintf(os.Stderr, "cache (%s): %v\n", *cacheDir, cache.Stats())
	}
}
