// Command sweep runs an injection-rate sweep for one network model and
// emits the latency/throughput curve as CSV on stdout — the raw data
// behind load-latency plots like Fig. 7.
//
// Usage:
//
//	sweep [-model SB] [-domains 2] [-from 0.01] [-to 0.3] [-step 0.02]
//	      [-cycles 10000] [-seed 1] [-workers 1]
//	      [-cache] [-cache-dir DIR] [-no-cache]
//	      [-faults FILE] [-checkpoint FILE] [-resume]
//	      [-http ADDR] [-progress] [-trace FILE] [-spans FILE]
//	      [-probe-dir DIR] [-probe-every N] [-flight-dir DIR]
//
// -workers N simulates up to N points concurrently.  Every point is an
// isolated deterministic simulation and rows are emitted in rate order
// regardless of completion order, so the CSV is byte-identical to a
// serial (-workers 1) sweep.
//
// Points are cached content-addressed under -cache-dir (default
// results/.simcache), shared with cmd/experiments; -no-cache forces
// fresh simulations.
//
// Robustness: -faults FILE arms a deterministic fault plan (JSON; see
// internal/fault and DESIGN.md §11) for every point, and the CSV gains
// dropped/retransmits/status columns.  Each point is isolated — a
// failing simulation is retried once, then emitted as an error row
// while the sweep continues (exit code 1 at the end); a point that
// livelocks or trips a router invariant is emitted as a "degraded" row
// with its partial statistics.  -checkpoint FILE journals every
// completed point keyed by its cache fingerprint; after an interrupt,
// rerunning with -resume replays finished rows from the journal and
// re-simulates only the incomplete points.
//
// Observability: -http ADDR serves /progress (JSON point counts and
// ETA), /debug/vars and /debug/pprof/* while the sweep runs; -progress
// prints one structured stderr line per completed point.  -trace FILE
// writes a packet lifecycle trace per point (FILE gains a _r<rate>
// suffix so points do not interleave); -spans FILE writes a Chrome
// trace (Perfetto) JSON per point the same way — load it at
// https://ui.perfetto.dev to see every packet's hop-by-hop timeline.
// -probe-dir DIR attaches a probe to every point and writes
// per-interval time-series JSONL and heatmap CSV files there.
// -flight-dir DIR arms a flight recorder on every point: a point that
// degrades (watchdog, recovered invariant) dumps its last cycles of
// events there for `replay -flight`.  Traced, probed, span-exported or
// recorded points always simulate — the result cache is bypassed for
// them.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"surfbless/internal/config"
	"surfbless/internal/fault"
	"surfbless/internal/packet"
	"surfbless/internal/parmap"
	"surfbless/internal/probe"
	"surfbless/internal/sim"
	"surfbless/internal/simcache"
	"surfbless/internal/trace"
	"surfbless/internal/traffic"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind a testable seam: flags in, CSV out,
// exit code back.  The parity test drives it directly with -workers 1
// and -workers N and compares stdout byte for byte.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "SB", "network model: WH, BLESS, Surf or SB")
	domains := fs.Int("domains", 2, "number of interference domains")
	from := fs.Float64("from", 0.01, "first total injection rate")
	to := fs.Float64("to", 0.30, "last total injection rate")
	step := fs.Float64("step", 0.02, "rate increment")
	cycles := fs.Int64("cycles", 10000, "measured cycles per point")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 1, "points simulated concurrently (rows stay in rate order)")
	useCache := fs.Bool("cache", true, "reuse cached simulation results")
	cacheDir := fs.String("cache-dir", filepath.Join("results", ".simcache"), "result-cache directory")
	noCache := fs.Bool("no-cache", false, "run every simulation fresh (overrides -cache)")
	httpAddr := fs.String("http", "", "serve /progress, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:6060)")
	progress := fs.Bool("progress", false, "print a structured progress line to stderr after every point")
	traceFile := fs.String("trace", "", "write a packet lifecycle trace per point (suffixed _r<rate>)")
	spansFile := fs.String("spans", "", "write a Chrome trace (Perfetto) JSON per point (suffixed _r<rate>)")
	probeDir := fs.String("probe-dir", "", "write per-point time series (JSONL) and heatmaps (CSV) into this directory")
	probeEvery := fs.Int64("probe-every", probe.DefaultEvery, "probe bucket width in cycles for -probe-dir")
	flightDir := fs.String("flight-dir", "", "write flight-recorder dumps of degraded points into this directory")
	faultsFile := fs.String("faults", "", "fault plan JSON applied to every point (see internal/fault)")
	ckptPath := fs.String("checkpoint", "", "journal completed points to this file")
	resume := fs.Bool("resume", false, "replay completed points from -checkpoint instead of re-simulating them")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fatal := func(err error) int {
		fmt.Fprintln(stderr, "sweep:", err)
		return 1
	}

	var cache *simcache.Cache
	if *useCache && !*noCache {
		var err error
		if cache, err = simcache.New(simcache.Options{Dir: *cacheDir}); err != nil {
			return fatal(err)
		}
	}

	var m config.Model
	switch *model {
	case "WH", "wh":
		m = config.WH
	case "BLESS", "bless":
		m = config.BLESS
	case "Surf", "surf":
		m = config.Surf
	case "SB", "sb":
		m = config.SB
	default:
		return fatal(fmt.Errorf("unknown model %q", *model))
	}
	if *step <= 0 || *from <= 0 || *to < *from {
		return fatal(fmt.Errorf("invalid rate range"))
	}
	if *workers < 1 {
		return fatal(fmt.Errorf("-workers %d, need ≥ 1", *workers))
	}
	if *probeDir != "" {
		if err := os.MkdirAll(*probeDir, 0o755); err != nil {
			return fatal(err)
		}
	}
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			return fatal(err)
		}
	}

	var plan *fault.Plan
	if *faultsFile != "" {
		base := config.Default(m)
		var err error
		if plan, err = fault.LoadPlan(*faultsFile, base.Width, base.Height); err != nil {
			return fatal(err)
		}
	}

	var ckpt *simcache.Checkpoint
	if *resume && *ckptPath == "" {
		return fatal(fmt.Errorf("-resume needs -checkpoint FILE"))
	}
	if *ckptPath != "" {
		if !*resume {
			// Without -resume the journal starts fresh; stale entries
			// from an unrelated sweep must not be replayed.
			if err := os.Remove(*ckptPath); err != nil && !os.IsNotExist(err) {
				return fatal(err)
			}
		}
		var err error
		if ckpt, err = simcache.OpenCheckpoint(*ckptPath); err != nil {
			return fatal(err)
		}
		defer ckpt.Close()
		if *resume {
			fmt.Fprintf(stderr, "resume: %d point(s) already journaled in %s", ckpt.Len(), *ckptPath)
			if n := ckpt.Skipped(); n > 0 {
				fmt.Fprintf(stderr, " (%d torn line(s) dropped)", n)
			}
			fmt.Fprintln(stderr)
		}
	}

	var rates []float64
	for rate := *from; rate <= *to+1e-9; rate += *step {
		rates = append(rates, rate)
	}

	g := probe.NewProgress()
	g.SetStage("sweep")
	g.SetTotal(int64(len(rates)))
	if cache != nil {
		g.SetCacheStats(func() (int64, int64) {
			s := cache.Stats()
			return s.Hits, s.Misses
		})
	}
	if *httpAddr != "" {
		metrics := probe.NewMetrics()
		if cache != nil {
			cache.ExposeMetrics(metrics)
		}
		srv, err := probe.Serve(*httpAddr, g, metrics)
		if err != nil {
			return fatal(err)
		}
		defer srv.Close() //nolint:errcheck // releases the listener on the way out
		fmt.Fprintf(stderr, "introspection: http://%s/progress (metrics at /metrics)\n", srv.Addr())
	}

	// outcome is one point's finished state, produced on a worker and
	// emitted on this goroutine in rate order.
	type outcome struct {
		row    string
		err    error        // non-nil after both attempts failed
		key    simcache.Key // cache fingerprint (valid iff keyOK)
		keyOK  bool
		replay bool // row came from the -resume journal
	}

	compute := func(_ int, rate float64) (outcome, error) {
		cfg := config.Default(m)
		cfg.Domains = *domains
		cfg.Faults = plan
		sources := make([]traffic.Source, *domains)
		for i := range sources {
			sources[i] = traffic.Source{Rate: rate / float64(*domains), Class: packet.Ctrl, VNet: -1}
		}
		o := sim.Options{
			Cfg:     cfg,
			Pattern: traffic.UniformRandom,
			Sources: sources,
			Warmup:  *cycles / 10, Measure: *cycles, Drain: 10 * *cycles,
			Seed: *seed,
		}
		out := outcome{}
		key, keyErr := sim.Fingerprint(o)
		if keyErr == nil {
			out.key, out.keyOK = key, true
		}
		if ckpt != nil && out.keyOK && !o.Observed() {
			if row, ok := ckpt.Lookup(key); ok {
				out.row, out.replay = row, true
				return out, nil
			}
		}

		// Per-point isolation: one failing point is retried once, then
		// reported as an error row; the sweep always reaches the last
		// rate.  Degraded points (watchdog, recovered invariant) are
		// data, not failures — their partial stats make the row.
		var err error
		for attempt := 0; attempt < 2; attempt++ {
			out.row, err = sweepPoint(o, m, rate, *domains, cache, pointFiles{
				trace: *traceFile, spans: *spansFile,
				probeDir: *probeDir, probeEvery: *probeEvery,
				flightDir: *flightDir, stderr: stderr,
			})
			if err == nil {
				return out, nil
			}
			if attempt == 0 {
				fmt.Fprintf(stderr, "sweep: rate %.3f failed (%v), retrying once\n", rate, err)
			}
		}
		fmt.Fprintf(stderr, "sweep: rate %.3f failed twice: %v — continuing\n", rate, err)
		out.row = fmt.Sprintf("%.3f,,,,,,,,,error: %s", rate, csvSafe(err.Error()))
		out.err = err
		return out, nil
	}

	fmt.Fprintln(stdout, "rate,avg_latency,queue_latency,network_latency,throughput,deflections_per_pkt,refused,dropped,retransmits,status")
	failures := 0
	observed := *traceFile != "" || *spansFile != "" || *probeDir != "" || *flightDir != ""
	parmap.Stream(rates, *workers, compute, func(_ int, out outcome, _ error) {
		fmt.Fprintln(stdout, out.row)
		if out.err != nil {
			failures++
		}
		if ckpt != nil && out.keyOK && out.err == nil && !out.replay && !observed {
			if rerr := ckpt.Record(out.key, out.row); rerr != nil {
				fmt.Fprintf(stderr, "sweep: checkpoint: %v\n", rerr)
			}
		}
		g.Add(1)
		if *progress {
			fmt.Fprintln(stderr, g.Line())
		}
	})
	if cache != nil {
		fmt.Fprintf(stderr, "cache (%s): %v\n", *cacheDir, cache.Stats())
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "sweep: %d point(s) failed\n", failures)
		return 1
	}
	return 0
}

// pointFiles collects the per-point observability outputs a sweep can
// request: lifecycle trace, Chrome-trace spans, probe series/heatmaps,
// and flight-recorder dumps of degraded points.
type pointFiles struct {
	trace      string
	spans      string
	probeDir   string
	probeEvery int64
	flightDir  string
	stderr     io.Writer
}

// sweepPoint simulates one rate and renders its CSV row.  A panic that
// escapes the simulator's own recover boundary is converted to an
// error here so the caller's isolation holds.
func sweepPoint(o sim.Options, m config.Model, rate float64, domains int,
	cache *simcache.Cache, files pointFiles) (row string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	var tw *trace.Writer
	if files.trace != "" {
		f, ferr := os.Create(suffixed(files.trace, rate))
		if ferr != nil {
			return "", ferr
		}
		fmt.Fprintln(f, trace.Header())
		tw = trace.New(f)
		o.Tracer = tw.Tracer()
	}
	var pf *trace.Perfetto
	if files.spans != "" {
		f, ferr := os.Create(suffixed(files.spans, rate))
		if ferr != nil {
			return "", ferr
		}
		pf = trace.NewPerfetto(f, o.Cfg.Mesh())
		o.Taps = append(o.Taps, pf)
	}
	var p *probe.Probe
	if files.probeDir != "" {
		p = &probe.Probe{}
		o.Probe = p
		o.ProbeEvery = files.probeEvery
	}
	if files.flightDir != "" {
		o.Recorder = probe.NewFlightRecorder(0)
	}
	res, err := sim.RunCached(o, cache)
	status := "ok"
	if err != nil {
		var de *sim.DegradedError
		if !errors.As(err, &de) {
			return "", err
		}
		res = de.Partial
		status = "degraded: " + csvSafe(de.Reason)
		if de.Flight != nil && files.flightDir != "" {
			path := filepath.Join(files.flightDir, fmt.Sprintf("sweep_%v_r%.3f.flight.json", m, rate))
			if werr := exportFile(path, de.Flight.WriteJSON); werr != nil {
				return "", werr
			}
			fmt.Fprintf(files.stderr, "sweep: rate %.3f degraded — flight dump: %s\n", rate, path)
		}
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			return "", fmt.Errorf("trace: %w", err)
		}
	}
	if pf != nil {
		if err := pf.Close(); err != nil {
			return "", fmt.Errorf("spans: %w", err)
		}
	}
	if p != nil {
		base := fmt.Sprintf("%v_r%.3f", m, rate)
		if err := exportFile(filepath.Join(files.probeDir, "sweep_ts_"+base+".jsonl"), p.WriteTimeSeriesJSONL); err != nil {
			return "", err
		}
		if err := exportFile(filepath.Join(files.probeDir, "sweep_heat_"+base+".csv"), p.WriteHeatmapCSV); err != nil {
			return "", err
		}
	}
	tot := res.Total
	thr := 0.0
	for d := 0; d < domains && d < len(res.Domains); d++ {
		thr += res.Throughput(d)
	}
	return fmt.Sprintf("%.3f,%.3f,%.3f,%.3f,%.4f,%.3f,%d,%d,%d,%s",
		rate, tot.AvgTotalLatency(), tot.AvgQueueLatency(), tot.AvgNetworkLatency(),
		thr, tot.AvgDeflections(), tot.Refused, tot.Dropped, tot.Retransmits, status), nil
}

// csvSafe strips the characters that would break the one-line CSV
// status cell.
func csvSafe(s string) string {
	s = strings.ReplaceAll(s, ",", ";")
	s = strings.ReplaceAll(s, "\n", " ")
	return s
}

// suffixed inserts _r<rate> before path's extension, so per-point
// trace files do not clobber each other.
func suffixed(path string, rate float64) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + fmt.Sprintf("_r%.3f", rate) + ext
}

// exportFile streams one probe exporter into path.
func exportFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("%s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("%s: %w", path, cerr)
	}
	return nil
}
