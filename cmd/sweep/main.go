// Command sweep runs an injection-rate sweep for one network model and
// emits the latency/throughput curve as CSV on stdout — the raw data
// behind load-latency plots like Fig. 7.
//
// Usage:
//
//	sweep [-model SB] [-domains 2] [-from 0.01] [-to 0.3] [-step 0.02]
//	      [-cycles 10000] [-seed 1] [-workers 1] [-shards 1]
//	      [-cache] [-cache-dir DIR] [-no-cache]
//	      [-faults FILE] [-checkpoint FILE] [-resume]
//	      [-attempts N] [-point-timeout DUR]
//	      [-remote ADDR]
//	      [-http ADDR] [-progress] [-trace FILE] [-spans FILE]
//	      [-probe-dir DIR] [-probe-every N] [-flight-dir DIR]
//
// -workers N simulates up to N points concurrently.  Every point is an
// isolated deterministic simulation and rows are emitted in rate order
// regardless of completion order, so the CSV is byte-identical to a
// serial (-workers 1) sweep.
//
// -shards N steps each point's mesh as N parallel tiles (see DESIGN.md
// §17) — useful for giant meshes where one point dominates wall-clock.
// Sharded stepping is bit-identical to serial, so the CSV, cache keys
// and checkpoint fingerprints are all unchanged.  Local runs only; a
// -remote fleet picks its own execution knobs.
//
// -remote ADDR submits the sweep to a sweepd coordinator (see
// cmd/sweepd) instead of simulating locally, polls until the worker
// fleet finishes it, and prints the coordinator-assembled CSV — which
// is byte-identical to what the same flags produce locally.
//
// Points are cached content-addressed under -cache-dir (default
// results/.simcache), shared with cmd/experiments; -no-cache forces
// fresh simulations.
//
// Robustness: -faults FILE arms a deterministic fault plan (JSON; see
// internal/fault and DESIGN.md §11) for every point, and the CSV gains
// dropped/retransmits/status columns.  Each point is isolated — a
// failing simulation is retried under seeded exponential backoff with
// jitter up to -attempts executions (default 2, preserving the old
// retry-once budget), then emitted as an error row while the sweep
// continues (exit code 1 at the end); points that needed retries carry
// "; attempts=N" in their status cell.  -point-timeout bounds one
// point's wall-clock simulation time (cancellation is plumbed through
// the simulator); an expired timeout is retryable like any failure.  A
// point that livelocks or trips a router invariant is emitted as a
// "degraded" row with its partial statistics.  -checkpoint FILE
// journals every completed point keyed by its cache fingerprint; after
// an interrupt, rerunning with -resume replays finished rows from the
// journal and re-simulates only the incomplete points.
//
// Observability: -http ADDR serves /progress (JSON point counts and
// ETA), /debug/vars and /debug/pprof/* while the sweep runs; -progress
// prints one structured stderr line per completed point.  -trace FILE
// writes a packet lifecycle trace per point (FILE gains a _r<rate>
// suffix so points do not interleave); -spans FILE writes a Chrome
// trace (Perfetto) JSON per point the same way — load it at
// https://ui.perfetto.dev to see every packet's hop-by-hop timeline.
// -probe-dir DIR attaches a probe to every point and writes
// per-interval time-series JSONL and heatmap CSV files there.
// -flight-dir DIR arms a flight recorder on every point: a point that
// degrades (watchdog, recovered invariant) dumps its last cycles of
// events there for `replay -flight`.  Traced, probed, span-exported or
// recorded points always simulate — the result cache is bypassed for
// them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"surfbless/internal/config"
	"surfbless/internal/fault"
	"surfbless/internal/parmap"
	"surfbless/internal/probe"
	"surfbless/internal/sim"
	"surfbless/internal/simcache"
	"surfbless/internal/sweepsvc"
	"surfbless/internal/sweepsvc/backoff"
	"surfbless/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind a testable seam: flags in, CSV out,
// exit code back.  The parity test drives it directly with -workers 1
// and -workers N and compares stdout byte for byte.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "SB", "network model: WH, BLESS, Surf or SB")
	domains := fs.Int("domains", 2, "number of interference domains")
	from := fs.Float64("from", 0.01, "first total injection rate")
	to := fs.Float64("to", 0.30, "last total injection rate")
	step := fs.Float64("step", 0.02, "rate increment")
	cycles := fs.Int64("cycles", 10000, "measured cycles per point")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 1, "points simulated concurrently (rows stay in rate order)")
	shards := fs.Int("shards", 1, "mesh tiles stepped in parallel inside each point (local runs only; bit-identical to serial)")
	useCache := fs.Bool("cache", true, "reuse cached simulation results")
	cacheDir := fs.String("cache-dir", filepath.Join("results", ".simcache"), "result-cache directory")
	noCache := fs.Bool("no-cache", false, "run every simulation fresh (overrides -cache)")
	attempts := fs.Int("attempts", sweepsvc.DefaultMaxAttempts, "per-point execution budget (1 = no retry)")
	pointTimeout := fs.Duration("point-timeout", 0, "wall-clock bound per point, e.g. 30s (0 = none)")
	remote := fs.String("remote", "", "submit to a sweepd coordinator at this host:port instead of simulating locally")
	httpAddr := fs.String("http", "", "serve /progress, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:6060)")
	progress := fs.Bool("progress", false, "print a structured progress line to stderr after every point")
	traceFile := fs.String("trace", "", "write a packet lifecycle trace per point (suffixed _r<rate>)")
	spansFile := fs.String("spans", "", "write a Chrome trace (Perfetto) JSON per point (suffixed _r<rate>)")
	probeDir := fs.String("probe-dir", "", "write per-point time series (JSONL) and heatmaps (CSV) into this directory")
	probeEvery := fs.Int64("probe-every", probe.DefaultEvery, "probe bucket width in cycles for -probe-dir")
	flightDir := fs.String("flight-dir", "", "write flight-recorder dumps of degraded points into this directory")
	faultsFile := fs.String("faults", "", "fault plan JSON applied to every point (see internal/fault)")
	ckptPath := fs.String("checkpoint", "", "journal completed points to this file")
	resume := fs.Bool("resume", false, "replay completed points from -checkpoint instead of re-simulating them")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fatal := func(err error) int {
		fmt.Fprintln(stderr, "sweep:", err)
		return 1
	}

	m, err := sweepsvc.ParseModel(*model)
	if err != nil {
		return fatal(err)
	}
	if *workers < 1 {
		return fatal(fmt.Errorf("-workers %d, need ≥ 1", *workers))
	}
	if *shards < 1 {
		return fatal(fmt.Errorf("-shards %d, need ≥ 1", *shards))
	}

	var plan *fault.Plan
	if *faultsFile != "" {
		base := config.Default(m)
		if plan, err = fault.LoadPlan(*faultsFile, base.Width, base.Height); err != nil {
			return fatal(err)
		}
	}

	// The spec is the same structure a sweepd job is made of: local and
	// remote sweeps share one canonical flag→options expansion, which
	// is what keeps their CSVs byte-identical.
	spec := sweepsvc.Spec{
		Model: *model, Domains: *domains,
		From: *from, To: *to, Step: *step,
		Cycles: *cycles, Seed: *seed,
		Faults:         plan,
		PointTimeoutMS: pointTimeout.Milliseconds(),
		MaxAttempts:    *attempts,
	}
	if err := spec.Validate(); err != nil {
		return fatal(err)
	}

	if *remote != "" {
		return runRemote(spec, *remote, backoff.Policy{Seed: *seed}, *progress, stdout, stderr)
	}

	var cache *simcache.Cache
	if *useCache && !*noCache {
		if cache, err = simcache.New(simcache.Options{Dir: *cacheDir}); err != nil {
			return fatal(err)
		}
	}
	if *probeDir != "" {
		if err := os.MkdirAll(*probeDir, 0o755); err != nil {
			return fatal(err)
		}
	}
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			return fatal(err)
		}
	}

	var ckpt *simcache.Checkpoint
	if *resume && *ckptPath == "" {
		return fatal(fmt.Errorf("-resume needs -checkpoint FILE"))
	}
	if *ckptPath != "" {
		if !*resume {
			// Without -resume the journal starts fresh; stale entries
			// from an unrelated sweep must not be replayed.
			if err := os.Remove(*ckptPath); err != nil && !os.IsNotExist(err) {
				return fatal(err)
			}
		}
		if ckpt, err = simcache.OpenCheckpoint(*ckptPath); err != nil {
			return fatal(err)
		}
		defer ckpt.Close()
		if *resume {
			fmt.Fprintf(stderr, "resume: %d point(s) already journaled in %s", ckpt.Len(), *ckptPath)
			if n := ckpt.Skipped(); n > 0 {
				fmt.Fprintf(stderr, " (%d torn line(s) dropped)", n)
			}
			fmt.Fprintln(stderr)
		}
	}

	rates := spec.Rates()

	g := probe.NewProgress()
	g.SetStage("sweep")
	g.SetTotal(int64(len(rates)))
	if cache != nil {
		g.SetCacheStats(func() (int64, int64) {
			s := cache.Stats()
			return s.Hits, s.Misses
		})
	}
	if *httpAddr != "" {
		metrics := probe.NewMetrics()
		if cache != nil {
			cache.ExposeMetrics(metrics)
		}
		srv, err := probe.Serve(*httpAddr, g, metrics)
		if err != nil {
			return fatal(err)
		}
		defer srv.Close() //nolint:errcheck // releases the listener on the way out
		fmt.Fprintf(stderr, "introspection: http://%s/progress (metrics at /metrics)\n", srv.Addr())
	}

	// Failing points retry under the same seeded-backoff policy the
	// sweepd workers use, so a local and a remote sweep degrade the
	// same way.
	policy := backoff.Policy{Seed: *seed}

	// outcome is one point's finished state, produced on a worker and
	// emitted on this goroutine in rate order.
	type outcome struct {
		row    string
		err    error        // non-nil after the attempt budget is spent
		key    simcache.Key // cache fingerprint (valid iff keyOK)
		keyOK  bool
		replay bool // row came from the -resume journal
	}

	compute := func(_ int, rate float64) (outcome, error) {
		o, oerr := spec.Options(rate)
		if oerr != nil { // unreachable after Validate; keep the point isolated anyway
			return outcome{row: sweepsvc.ErrorRow(rate, "error: "+sweepsvc.CSVSafe(oerr.Error())), err: oerr}, nil
		}
		// Execution knob, not part of the point's identity: Shards is
		// fingerprint-exempt, so cache and checkpoint keys are unchanged.
		o.Shards = *shards
		out := outcome{}
		key, keyErr := sim.Fingerprint(o)
		if keyErr == nil {
			out.key, out.keyOK = key, true
		}
		if ckpt != nil && out.keyOK && !o.Observed() {
			if row, ok := ckpt.Lookup(key); ok {
				out.row, out.replay = row, true
				return out, nil
			}
		}

		// Per-point isolation: a failing point is retried with seeded
		// exponential backoff up to the -attempts budget, then reported
		// as an error row; the sweep always reaches the last rate.
		// Degraded points (watchdog, recovered invariant) are data, not
		// failures — their partial stats make the row and never consume
		// retries.
		budget := spec.Attempts()
		var lastErr error
		for attempt := 1; attempt <= budget; attempt++ {
			pctx, cancel := pointCtx(*pointTimeout)
			res, status, perr := sweepPoint(pctx, o, m, rate, cache, pointFiles{
				trace: *traceFile, spans: *spansFile,
				probeDir: *probeDir, probeEvery: *probeEvery,
				flightDir: *flightDir, stderr: stderr,
			})
			cancel()
			if perr == nil {
				out.row = sweepsvc.RenderRow(rate, *domains, res, sweepsvc.StatusWithAttempts(status, attempt))
				return out, nil
			}
			if errors.Is(perr, context.DeadlineExceeded) {
				perr = fmt.Errorf("timeout after %v", *pointTimeout)
			}
			lastErr = perr
			if attempt == budget {
				break
			}
			fmt.Fprintf(stderr, "sweep: rate %.3f attempt %d failed (%v), backing off %v\n",
				rate, attempt, perr, policy.Delay(attempt-1).Round(time.Millisecond))
			policy.Sleep(context.Background(), attempt-1) //nolint:errcheck // background ctx never cancels
		}
		fmt.Fprintf(stderr, "sweep: rate %.3f failed %d time(s): %v — continuing\n", rate, budget, lastErr)
		out.row = sweepsvc.ErrorRow(rate, sweepsvc.StatusWithAttempts("error: "+sweepsvc.CSVSafe(lastErr.Error()), budget))
		out.err = lastErr
		return out, nil
	}

	fmt.Fprintln(stdout, sweepsvc.CSVHeader)
	failures := 0
	observed := *traceFile != "" || *spansFile != "" || *probeDir != "" || *flightDir != ""
	parmap.Stream(rates, *workers, compute, func(_ int, out outcome, _ error) {
		fmt.Fprintln(stdout, out.row)
		if out.err != nil {
			failures++
		}
		if ckpt != nil && out.keyOK && out.err == nil && !out.replay && !observed {
			if rerr := ckpt.Record(out.key, out.row); rerr != nil {
				fmt.Fprintf(stderr, "sweep: checkpoint: %v\n", rerr)
			}
		}
		g.Add(1)
		if *progress {
			fmt.Fprintln(stderr, g.Line())
		}
	})
	if cache != nil {
		fmt.Fprintf(stderr, "cache (%s): %v\n", *cacheDir, cache.Stats())
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "sweep: %d point(s) failed\n", failures)
		return 1
	}
	return 0
}

// remoteRPCAttempts bounds each remote poll's retries through a
// coordinator outage — the same budget the workers run with, so the
// client survives any bounce the fleet survives.
const remoteRPCAttempts = 8

// remotePollHook, when non-nil, runs after every poll (status and rows
// fetched) and before freshly completed rows are printed — the seam
// the regression test uses to bounce the coordinator mid-stream.
var remotePollHook func(done, total int)

// runRemote submits the spec to a sweepd coordinator and streams the
// CSV as points complete: the header first, then each row as soon as
// every earlier rate is also done, so stdout is byte-identical to a
// local sweep.  Polls ride through transient coordinator outages (a
// crash-restart mid-sweep loses no journaled work, so giving up would
// abandon a live job).  Printed rows are deduplicated by point
// fingerprint, not row index: a bounce with a torn WAL tail can revert
// a completed point to pending and re-complete it later, so indexes
// may go backwards between polls while fingerprints stay stable.
func runRemote(spec sweepsvc.Spec, addr string, policy backoff.Policy, progress bool, stdout, stderr io.Writer) int {
	client := sweepsvc.NewClient(addr)
	ctx := context.Background()
	job, points, err := client.Submit(ctx, spec)
	if err != nil {
		fmt.Fprintln(stderr, "sweep:", err)
		return 1
	}
	fmt.Fprintf(stderr, "remote: job %s (%d points) on %s\n", job, points, addr)
	fmt.Fprintln(stdout, sweepsvc.CSVHeader)
	printed := make(map[string]bool, points)
	next := 0 // rows[:next] have been streamed; rate order never regresses
	lastDone := -1
	for {
		st, err := client.StatusWithRetry(ctx, policy, remoteRPCAttempts, job)
		if err != nil {
			fmt.Fprintln(stderr, "sweep:", err)
			return 1
		}
		if progress && st.Done != lastDone {
			fmt.Fprintf(stderr, "remote: %d/%d done (%d leased, %d failed)\n", st.Done, st.Total, st.Leased, st.Failed)
			lastDone = st.Done
		}
		rows, err := client.RowsWithRetry(ctx, policy, remoteRPCAttempts, job)
		if err != nil {
			fmt.Fprintln(stderr, "sweep:", err)
			return 1
		}
		if remotePollHook != nil {
			remotePollHook(st.Done, st.Total)
		}
		// Stream the contiguous done prefix.  The cursor keeps rate
		// order; the fingerprint set keeps idempotence when a bounce
		// replays completions the stream has already passed.
		for next < len(rows) && rows[next].Done {
			r := rows[next]
			next++
			key := r.Fingerprint
			if key == "" {
				key = fmt.Sprintf("point-%d", r.Point)
			}
			if printed[key] {
				continue
			}
			printed[key] = true
			fmt.Fprintln(stdout, r.Row)
		}
		if st.Complete && next >= len(rows) {
			if st.Failed > 0 {
				fmt.Fprintf(stderr, "sweep: %d point(s) failed\n", st.Failed)
				return 1
			}
			return 0
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// pointCtx returns the per-point context — bounded when a timeout is
// set, free otherwise — and its cancel func (a no-op without timeout).
func pointCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), timeout)
}

// pointFiles collects the per-point observability outputs a sweep can
// request: lifecycle trace, Chrome-trace spans, probe series/heatmaps,
// and flight-recorder dumps of degraded points.
type pointFiles struct {
	trace      string
	spans      string
	probeDir   string
	probeEvery int64
	flightDir  string
	stderr     io.Writer
}

// sweepPoint simulates one rate and returns its result and status cell
// ("ok" or "degraded: <reason>").  A panic that escapes the
// simulator's own recover boundary is converted to an error here so
// the caller's isolation holds.
func sweepPoint(ctx context.Context, o sim.Options, m config.Model, rate float64,
	cache *simcache.Cache, files pointFiles) (res sim.Result, status string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	o.Ctx = ctx
	var tw *trace.Writer
	if files.trace != "" {
		f, ferr := os.Create(suffixed(files.trace, rate))
		if ferr != nil {
			return res, "", ferr
		}
		fmt.Fprintln(f, trace.Header())
		tw = trace.New(f)
		o.Tracer = tw.Tracer()
	}
	var pf *trace.Perfetto
	if files.spans != "" {
		f, ferr := os.Create(suffixed(files.spans, rate))
		if ferr != nil {
			return res, "", ferr
		}
		pf = trace.NewPerfetto(f, o.Cfg.Mesh())
		o.Taps = append(o.Taps, pf)
	}
	var p *probe.Probe
	if files.probeDir != "" {
		p = &probe.Probe{}
		o.Probe = p
		o.ProbeEvery = files.probeEvery
	}
	if files.flightDir != "" {
		o.Recorder = probe.NewFlightRecorder(0)
	}
	res, err = sim.RunCached(o, cache)
	status = "ok"
	if err != nil {
		var de *sim.DegradedError
		if !errors.As(err, &de) {
			return res, "", err
		}
		res = de.Partial
		status = "degraded: " + sweepsvc.CSVSafe(de.Reason)
		err = nil
		if de.Flight != nil && files.flightDir != "" {
			path := filepath.Join(files.flightDir, fmt.Sprintf("sweep_%v_r%.3f.flight.json", m, rate))
			if werr := exportFile(path, de.Flight.WriteJSON); werr != nil {
				return res, "", werr
			}
			fmt.Fprintf(files.stderr, "sweep: rate %.3f degraded — flight dump: %s\n", rate, path)
		}
	}
	if tw != nil {
		if cerr := tw.Close(); cerr != nil {
			return res, "", fmt.Errorf("trace: %w", cerr)
		}
	}
	if pf != nil {
		if cerr := pf.Close(); cerr != nil {
			return res, "", fmt.Errorf("spans: %w", cerr)
		}
	}
	if p != nil {
		base := fmt.Sprintf("%v_r%.3f", m, rate)
		if eerr := exportFile(filepath.Join(files.probeDir, "sweep_ts_"+base+".jsonl"), p.WriteTimeSeriesJSONL); eerr != nil {
			return res, "", eerr
		}
		if eerr := exportFile(filepath.Join(files.probeDir, "sweep_heat_"+base+".csv"), p.WriteHeatmapCSV); eerr != nil {
			return res, "", eerr
		}
	}
	return res, status, nil
}

// suffixed inserts _r<rate> before path's extension, so per-point
// trace files do not clobber each other.
func suffixed(path string, rate float64) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + fmt.Sprintf("_r%.3f", rate) + ext
}

// exportFile streams one probe exporter into path.
func exportFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("%s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("%s: %w", path, cerr)
	}
	return nil
}
