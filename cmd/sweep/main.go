// Command sweep runs an injection-rate sweep for one network model and
// emits the latency/throughput curve as CSV on stdout — the raw data
// behind load-latency plots like Fig. 7.
//
// Usage:
//
//	sweep [-model SB] [-domains 2] [-from 0.01] [-to 0.3] [-step 0.02]
//	      [-cycles 10000] [-seed 1] [-cache] [-cache-dir DIR] [-no-cache]
//	      [-http ADDR] [-progress] [-trace FILE]
//	      [-probe-dir DIR] [-probe-every N]
//
// Points are cached content-addressed under -cache-dir (default
// results/.simcache), shared with cmd/experiments; -no-cache forces
// fresh simulations.
//
// Observability: -http ADDR serves /progress (JSON point counts and
// ETA), /debug/vars and /debug/pprof/* while the sweep runs; -progress
// prints one structured stderr line per completed point.  -trace FILE
// writes a packet lifecycle trace per point (FILE gains a _r<rate>
// suffix so points do not interleave).  -probe-dir DIR attaches a
// probe to every point and writes per-interval time-series JSONL and
// heatmap CSV files there.  Traced or probed points always simulate —
// the result cache is bypassed for them.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"surfbless/internal/config"
	"surfbless/internal/packet"
	"surfbless/internal/probe"
	"surfbless/internal/sim"
	"surfbless/internal/simcache"
	"surfbless/internal/trace"
	"surfbless/internal/traffic"
)

func main() {
	model := flag.String("model", "SB", "network model: WH, BLESS, Surf or SB")
	domains := flag.Int("domains", 2, "number of interference domains")
	from := flag.Float64("from", 0.01, "first total injection rate")
	to := flag.Float64("to", 0.30, "last total injection rate")
	step := flag.Float64("step", 0.02, "rate increment")
	cycles := flag.Int64("cycles", 10000, "measured cycles per point")
	seed := flag.Int64("seed", 1, "random seed")
	useCache := flag.Bool("cache", true, "reuse cached simulation results")
	cacheDir := flag.String("cache-dir", filepath.Join("results", ".simcache"), "result-cache directory")
	noCache := flag.Bool("no-cache", false, "run every simulation fresh (overrides -cache)")
	httpAddr := flag.String("http", "", "serve /progress, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:6060)")
	progress := flag.Bool("progress", false, "print a structured progress line to stderr after every point")
	traceFile := flag.String("trace", "", "write a packet lifecycle trace per point (suffixed _r<rate>)")
	probeDir := flag.String("probe-dir", "", "write per-point time series (JSONL) and heatmaps (CSV) into this directory")
	probeEvery := flag.Int64("probe-every", probe.DefaultEvery, "probe bucket width in cycles for -probe-dir")
	flag.Parse()

	var cache *simcache.Cache
	if *useCache && !*noCache {
		var err error
		if cache, err = simcache.New(simcache.Options{Dir: *cacheDir}); err != nil {
			fatal(err)
		}
	}

	var m config.Model
	switch *model {
	case "WH", "wh":
		m = config.WH
	case "BLESS", "bless":
		m = config.BLESS
	case "Surf", "surf":
		m = config.Surf
	case "SB", "sb":
		m = config.SB
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}
	if *step <= 0 || *from <= 0 || *to < *from {
		fatal(fmt.Errorf("invalid rate range"))
	}
	if *probeDir != "" {
		if err := os.MkdirAll(*probeDir, 0o755); err != nil {
			fatal(err)
		}
	}

	var rates []float64
	for rate := *from; rate <= *to+1e-9; rate += *step {
		rates = append(rates, rate)
	}

	g := probe.NewProgress()
	g.SetStage("sweep")
	g.SetTotal(int64(len(rates)))
	if cache != nil {
		g.SetCacheStats(func() (int64, int64) {
			s := cache.Stats()
			return s.Hits, s.Misses
		})
	}
	if *httpAddr != "" {
		addr, err := probe.Serve(*httpAddr, g)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "introspection: http://%s/progress\n", addr)
	}

	fmt.Println("rate,avg_latency,queue_latency,network_latency,throughput,deflections_per_pkt,refused")
	for _, rate := range rates {
		cfg := config.Default(m)
		cfg.Domains = *domains
		sources := make([]traffic.Source, *domains)
		for i := range sources {
			sources[i] = traffic.Source{Rate: rate / float64(*domains), Class: packet.Ctrl, VNet: -1}
		}
		o := sim.Options{
			Cfg:     cfg,
			Pattern: traffic.UniformRandom,
			Sources: sources,
			Warmup:  *cycles / 10, Measure: *cycles, Drain: 10 * *cycles,
			Seed: *seed,
		}
		var tw *trace.Writer
		if *traceFile != "" {
			f, err := os.Create(suffixed(*traceFile, rate))
			if err != nil {
				fatal(err)
			}
			fmt.Fprintln(f, trace.Header())
			tw = trace.New(f)
			o.Tracer = tw.Tracer()
		}
		var p *probe.Probe
		if *probeDir != "" {
			p = &probe.Probe{}
			o.Probe = p
			o.ProbeEvery = *probeEvery
		}
		res, err := sim.RunCached(o, cache)
		if err != nil {
			fatal(fmt.Errorf("rate %.3f: %w", rate, err))
		}
		if tw != nil {
			if err := tw.Close(); err != nil {
				fatal(fmt.Errorf("rate %.3f: trace: %w", rate, err))
			}
		}
		if p != nil {
			base := fmt.Sprintf("%v_r%.3f", m, rate)
			if err := exportFile(filepath.Join(*probeDir, "sweep_ts_"+base+".jsonl"), p.WriteTimeSeriesJSONL); err != nil {
				fatal(err)
			}
			if err := exportFile(filepath.Join(*probeDir, "sweep_heat_"+base+".csv"), p.WriteHeatmapCSV); err != nil {
				fatal(err)
			}
		}
		tot := res.Total
		thr := 0.0
		for d := 0; d < *domains; d++ {
			thr += res.Throughput(d)
		}
		fmt.Printf("%.3f,%.3f,%.3f,%.3f,%.4f,%.3f,%d\n",
			rate, tot.AvgTotalLatency(), tot.AvgQueueLatency(), tot.AvgNetworkLatency(),
			thr, tot.AvgDeflections(), tot.Refused)
		g.Add(1)
		if *progress {
			fmt.Fprintln(os.Stderr, g.Line())
		}
	}
	if cache != nil {
		fmt.Fprintf(os.Stderr, "cache (%s): %v\n", *cacheDir, cache.Stats())
	}
}

// suffixed inserts _r<rate> before path's extension, so per-point
// trace files do not clobber each other.
func suffixed(path string, rate float64) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + fmt.Sprintf("_r%.3f", rate) + ext
}

// exportFile streams one probe exporter into path.
func exportFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("%s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("%s: %w", path, cerr)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
