package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"surfbless/internal/probe"
	"surfbless/internal/sweepsvc"
	"surfbless/internal/sweepsvc/backoff"
)

// sweepArgs is a small, fast sweep; -no-cache keeps the test hermetic
// (no results/.simcache created in the repo).
func sweepArgs(extra ...string) []string {
	args := []string{
		"-model", "SB", "-domains", "2",
		"-from", "0.02", "-to", "0.10", "-step", "0.02",
		"-cycles", "400", "-seed", "7", "-no-cache",
	}
	return append(args, extra...)
}

func runSweep(t *testing.T, args []string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

// A parallel sweep must emit a byte-identical CSV to a serial one:
// every point is an isolated deterministic simulation and the emitter
// preserves rate order.
func TestParallelSweepMatchesSerial(t *testing.T) {
	serial, _, code := runSweep(t, sweepArgs("-workers", "1"))
	if code != 0 {
		t.Fatalf("serial sweep exit %d", code)
	}
	for _, workers := range []string{"2", "4"} {
		parallel, _, code := runSweep(t, sweepArgs("-workers", workers))
		if code != 0 {
			t.Fatalf("-workers %s sweep exit %d", workers, code)
		}
		if parallel != serial {
			t.Errorf("-workers %s CSV differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				workers, serial, parallel)
		}
	}
	lines := strings.Split(strings.TrimSpace(serial), "\n")
	if len(lines) != 1+5 { // header + rates 0.02..0.10
		t.Fatalf("expected 5 data rows, got %d:\n%s", len(lines)-1, serial)
	}
}

// A parallel sweep must checkpoint every point, and a resumed run must
// replay the journal instead of re-simulating, with identical output.
func TestParallelSweepCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	first, _, code := runSweep(t, sweepArgs("-workers", "4", "-checkpoint", ckpt))
	if code != 0 {
		t.Fatalf("first sweep exit %d", code)
	}
	resumed, stderr, code := runSweep(t, sweepArgs("-workers", "4", "-checkpoint", ckpt, "-resume"))
	if code != 0 {
		t.Fatalf("resumed sweep exit %d", code)
	}
	if resumed != first {
		t.Errorf("resumed CSV differs:\n--- first ---\n%s--- resumed ---\n%s", first, resumed)
	}
	if !strings.Contains(stderr, "5 point(s) already journaled") {
		t.Errorf("resume did not replay the journal; stderr:\n%s", stderr)
	}
}

// -remote must print the exact CSV a local run of the same flags
// prints: the coordinator assembles rows rendered by the same
// sweepsvc spec/row layer the local path uses.
func TestRemoteSweepMatchesLocal(t *testing.T) {
	local, _, code := runSweep(t, sweepArgs("-workers", "1"))
	if code != 0 {
		t.Fatalf("local sweep exit %d", code)
	}

	coord, err := sweepsvc.OpenCoordinator(sweepsvc.CoordinatorOptions{
		WALPath: filepath.Join(t.TempDir(), "wal"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv, err := sweepsvc.NewServer("127.0.0.1:0", coord, probe.NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pol := backoff.Policy{Base: time.Millisecond, Seed: 3}
	w, err := sweepsvc.NewWorker(sweepsvc.WorkerOptions{
		Name: "w1", Client: sweepsvc.NewClient(srv.Addr()),
		Runner: &sweepsvc.Runner{Policy: pol},
		Slots:  2, Poll: 5 * time.Millisecond, Backoff: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); w.Run(context.Background()) }()
	defer func() { w.Drain(); <-done }()

	remote, stderr, code := runSweep(t, sweepArgs("-remote", srv.Addr(), "-progress"))
	if code != 0 {
		t.Fatalf("remote sweep exit %d; stderr:\n%s", code, stderr)
	}
	if remote != local {
		t.Errorf("remote CSV differs from local:\n--- local ---\n%s--- remote ---\n%s", local, remote)
	}
}

// A coordinator crash-restart between a status poll and row printing
// must not double-print, drop or reorder rows: the streaming loop only
// advances its rate-order cursor and dedups printed rows by point
// fingerprint, which is stable across WAL replays (row indexes are
// not, when a torn tail reverts points).  The hook completes two
// points, lets them print, bounces the coordinator (same WAL, same
// address) while their rows are mid-stream, then completes the rest on
// the new incarnation — stdout must still be byte-identical to a local
// sweep.
func TestRemoteSweepBouncePollPrint(t *testing.T) {
	local, _, code := runSweep(t, sweepArgs("-workers", "1"))
	if code != 0 {
		t.Fatalf("local sweep exit %d", code)
	}

	walPath := filepath.Join(t.TempDir(), "wal")
	coord, err := sweepsvc.OpenCoordinator(sweepsvc.CoordinatorOptions{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := sweepsvc.NewServer("127.0.0.1:0", coord, probe.NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	defer func() { srv.Close(); coord.Close() }()

	runner := &sweepsvc.Runner{Policy: backoff.Policy{Base: time.Millisecond, Seed: 3}}
	complete := func(n int) {
		t.Helper()
		leases, err := coord.AcquireLeases("bounce-test", n)
		if err != nil {
			t.Fatalf("AcquireLeases: %v", err)
		}
		for _, l := range leases {
			ex := runner.RunPoint(context.Background(), l.Spec, l.Rate)
			if _, err := coord.CompletePoint(sweepsvc.Completion{
				Lease: l.ID, Job: l.Job, Point: l.Point,
				Row: ex.Row, Status: ex.Status, Attempts: ex.Attempts, Failed: ex.Failed,
			}); err != nil {
				t.Fatalf("CompletePoint: %v", err)
			}
		}
	}
	bounced := false
	poll := 0
	remotePollHook = func(done, total int) {
		defer func() { poll++ }()
		switch poll {
		case 0:
			// First poll saw an all-pending snapshot; finish two points so
			// the next poll streams them.
			complete(2)
		case 1:
			// The streaming loop has fetched rows showing two done points
			// and will print them right after this hook returns — i.e.
			// during the outage.  Crash-restart the coordinator on the
			// same WAL and address, then finish the job on the new
			// incarnation.
			srv.Close()
			coord.Close()
			if coord, err = sweepsvc.OpenCoordinator(sweepsvc.CoordinatorOptions{WALPath: walPath}); err != nil {
				t.Fatalf("reopen coordinator: %v", err)
			}
			for try := 0; ; try++ {
				if srv, err = sweepsvc.NewServer(addr, coord, probe.NewMetrics()); err == nil {
					break
				}
				if try == 50 {
					t.Fatalf("rebind %s: %v", addr, err)
				}
				time.Sleep(10 * time.Millisecond)
			}
			bounced = true
			complete(3)
		}
	}
	defer func() { remotePollHook = nil }()

	remote, stderrOut, code := runSweep(t, sweepArgs("-remote", addr, "-progress"))
	if code != 0 {
		t.Fatalf("remote sweep exit %d; stderr:\n%s", code, stderrOut)
	}
	if !bounced {
		t.Fatal("test rig never bounced the coordinator")
	}
	if remote != local {
		t.Errorf("remote CSV differs from local across the bounce:\n--- local ---\n%s--- remote ---\n%s", local, remote)
	}
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(remote, "\n"), "\n") {
		if seen[line] {
			t.Errorf("row printed twice: %q", line)
		}
		seen[line] = true
	}
}

func TestBadFlagsFail(t *testing.T) {
	if _, _, code := runSweep(t, sweepArgs("-workers", "0")); code == 0 {
		t.Error("-workers 0 must fail")
	}
	if _, _, code := runSweep(t, sweepArgs("-model", "nope")); code == 0 {
		t.Error("unknown model must fail")
	}
}

// A span-exporting sweep writes one loadable Chrome-trace JSON per
// point, and its CSV is identical to an unobserved sweep — the
// exporter rides the probe's event stream without touching results.
func TestSweepSpansExport(t *testing.T) {
	plain, _, code := runSweep(t, sweepArgs("-workers", "1"))
	if code != 0 {
		t.Fatalf("plain sweep exit %d", code)
	}
	dir := t.TempDir()
	spans := filepath.Join(dir, "spans.json")
	observed, _, code := runSweep(t, sweepArgs("-workers", "1", "-spans", spans))
	if code != 0 {
		t.Fatalf("spans sweep exit %d", code)
	}
	if observed != plain {
		t.Errorf("span export changed the CSV:\n--- plain ---\n%s--- spans ---\n%s", plain, observed)
	}
	files, err := filepath.Glob(filepath.Join(dir, "spans_r*.json"))
	if err != nil || len(files) != 5 {
		t.Fatalf("got %d span files (%v), want 5", len(files), err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &ct); err != nil {
		t.Fatalf("%s is not valid Chrome trace JSON: %v", files[0], err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Errorf("%s holds no trace events", files[0])
	}
}
