package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/fault"
	"surfbless/internal/packet"
	"surfbless/internal/probe"
	"surfbless/internal/sim"
	"surfbless/internal/traffic"
)

// degradedDump produces a real flight dump: a WH run wedged by a
// killed link until the watchdog trips, with a recorder attached.
func degradedDump(t *testing.T) *probe.FlightDump {
	t.Helper()
	cfg := config.Default(config.WH)
	cfg.Width, cfg.Height = 4, 4
	cfg.Faults = &fault.Plan{Events: []fault.Event{
		{Kind: fault.LinkKill, Node: 0, Dir: 1 /* East */, At: 0},
	}}
	sources := make([]traffic.Source, cfg.Domains)
	for i := range sources {
		sources[i] = traffic.Source{Rate: 0.05 / float64(cfg.Domains), Class: packet.Ctrl, VNet: -1}
	}
	rec := probe.NewFlightRecorder(256)
	_, err := sim.Run(sim.Options{
		Cfg:                cfg,
		Pattern:            traffic.UniformRandom,
		Sources:            sources,
		Measure:            3000,
		Drain:              50000,
		Seed:               3,
		WatchdogNoProgress: 3000,
		WatchdogMaxAge:     -1,
		Recorder:           rec,
	})
	var de *sim.DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("expected DegradedError, got %v", err)
	}
	if de.Flight == nil {
		t.Fatal("DegradedError carries no flight dump despite an armed recorder")
	}
	if len(de.Flight.Events) == 0 {
		t.Fatal("flight dump holds no events")
	}
	return de.Flight
}

// TestFlightDumpRoundTrip is the acceptance path: a degraded run's
// dump survives WriteJSON → ReadFlightDump bit-exactly and renders as
// a timeline through `replay -flight`.
func TestFlightDumpRoundTrip(t *testing.T) {
	d := degradedDump(t)
	if d.Reason == "" || d.Model != "WH" || d.Width != 4 || d.Height != 4 {
		t.Fatalf("dump header = %+v", d)
	}

	path := filepath.Join(t.TempDir(), "flight.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	got, err := probe.ReadFlightDump(rf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, d)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flight", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("replay -flight exited %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"flight dump:",
		d.Reason,
		"model WH, mesh 4x4",
		"--- cycle ",
		"tick:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

// TestFlightDumpRejectsGarbage keeps the forensic path honest about
// bad inputs: wrong version and non-JSON both fail loudly.
func TestFlightDumpRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":99,"events":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flight", bad}, &stdout, &stderr); code == 0 {
		t.Fatal("unsupported dump version accepted")
	}
	if !strings.Contains(stderr.String(), "version") {
		t.Errorf("error does not name the version: %s", stderr.String())
	}

	garbage := filepath.Join(dir, "garbage")
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{"-flight", garbage}, &stdout, &stderr); code == 0 {
		t.Fatal("garbage accepted")
	}
}

// TestRecordReplaySmoke keeps the original record→replay path alive
// through the run() seam.
func TestRecordReplaySmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-record", "BLESS", "-play", "SB", "-cycles", "300", "-rate", "0.04"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("replay exited %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "recorded BLESS") || !strings.Contains(out, "replayed into SB") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}
