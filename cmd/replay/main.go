// Command replay records a packet trace from one network model and
// replays the identical population into another, printing both runs'
// statistics side by side — apples-to-apples comparison on exactly the
// same packets instead of statistically similar ones.
//
// Usage:
//
//	replay [-record BLESS] [-play SB] [-domains 2] [-rate 0.05]
//	       [-cycles 5000] [-seed 1] [-trace FILE]
//	replay -flight FILE
//
// With -trace, the recorded CSV is also written to FILE (and can be fed
// back with -from FILE instead of recording).
//
// -flight FILE switches to forensic mode: FILE is a flight-recorder
// dump (probe.FlightDump JSON, produced automatically on watchdog
// trips, degraded runs and WCTA conformance violations) and replay
// renders it as a cycle-ordered event timeline — what every router and
// NI did in the final cycles before the failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"surfbless/internal/config"
	"surfbless/internal/geom"
	"surfbless/internal/network"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/probe"
	"surfbless/internal/sim"
	"surfbless/internal/stats"
	"surfbless/internal/trace"
	"surfbless/internal/traffic"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the whole command behind a testable seam (mirroring
// cmd/sweep): flags in, report out, exit code back.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	record := fs.String("record", "BLESS", "model to record from (ignored with -from)")
	play := fs.String("play", "SB", "model to replay into")
	domains := fs.Int("domains", 2, "number of domains")
	rate := fs.Float64("rate", 0.05, "total injection rate while recording")
	cycles := fs.Int64("cycles", 5000, "recording length in cycles")
	seed := fs.Int64("seed", 1, "random seed")
	traceOut := fs.String("trace", "", "write the recorded trace CSV to this file")
	from := fs.String("from", "", "replay from an existing trace file instead of recording")
	flight := fs.String("flight", "", "render a flight-recorder dump (JSON) as an event timeline instead of replaying")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fatal := func(err error) int {
		fmt.Fprintln(stderr, "replay:", err)
		return 1
	}

	if *flight != "" {
		f, err := os.Open(*flight)
		if err != nil {
			return fatal(err)
		}
		defer f.Close()
		d, err := probe.ReadFlightDump(f)
		if err != nil {
			return fatal(err)
		}
		printFlight(stdout, d)
		return 0
	}

	playModel, err := modelByName(*play)
	if err != nil {
		return fatal(err)
	}

	var traceCSV string
	mesh := geom.NewMesh(8, 8)
	if *from != "" {
		raw, err := os.ReadFile(*from)
		if err != nil {
			return fatal(err)
		}
		traceCSV = string(raw)
		fmt.Fprintf(stdout, "replaying %s into %v\n\n", *from, playModel)
	} else {
		recModel, err := modelByName(*record)
		if err != nil {
			return fatal(err)
		}
		var recStats stats.Domain
		traceCSV, recStats, err = recordRun(recModel, *domains, *rate, *cycles, *seed)
		if err != nil {
			return fatal(err)
		}
		fmt.Fprintf(stdout, "recorded %v: %d packets, avg latency %.2f\n",
			recModel, recStats.Ejected, recStats.AvgTotalLatency())
		if *traceOut != "" {
			if err := os.WriteFile(*traceOut, []byte(traceCSV), 0o644); err != nil {
				return fatal(err)
			}
			fmt.Fprintf(stdout, "trace written to %s\n", *traceOut)
		}
	}

	playStats, err := replayRun(playModel, *domains, mesh, strings.NewReader(traceCSV), stderr)
	if err != nil {
		return fatal(err)
	}
	fmt.Fprintf(stdout, "replayed into %v: %d packets, avg latency %.2f (queue %.2f + network %.2f), %.3f deflections/pkt\n",
		playModel, playStats.Ejected, playStats.AvgTotalLatency(),
		playStats.AvgQueueLatency(), playStats.AvgNetworkLatency(), playStats.AvgDeflections())
	return 0
}

// printFlight renders a flight dump as a forensic timeline: the run's
// header, then one line per recorded event in deterministic snapshot
// order, with cycle group separators.
func printFlight(w io.Writer, d *probe.FlightDump) {
	fmt.Fprintf(w, "flight dump: %s\n", d.Reason)
	fmt.Fprintf(w, "model %s, mesh %dx%d, %d domain(s); tripped at cycle %d, window %d cycles, %d event(s)\n",
		d.Model, d.Width, d.Height, d.Domains, d.Cycle, d.Window, len(d.Events))
	mesh := geom.NewMesh(max(d.Width, 1), max(d.Height, 1))
	lastCycle := int64(-1)
	for i := range d.Events {
		e := &d.Events[i]
		if e.Cycle != lastCycle {
			fmt.Fprintf(w, "--- cycle %d ---\n", e.Cycle)
			lastCycle = e.Cycle
		}
		fmt.Fprintf(w, "  %s\n", flightLine(mesh, e))
	}
}

// flightLine renders one event the way a human reads a timeline.
func flightLine(mesh geom.Mesh, e *probe.Event) string {
	at := func(id int32) string {
		if id < 0 || int(id) >= mesh.Nodes() {
			return "?"
		}
		c := mesh.CoordOf(int(id))
		return fmt.Sprintf("%d,%d", c.X, c.Y)
	}
	switch e.Kind {
	case probe.KindTick:
		return fmt.Sprintf("tick: %d in flight", e.Flits)
	case probe.KindRefused:
		return fmt.Sprintf("refused: dom %d NI queue full", e.Domain)
	case probe.KindLinkBusy, probe.KindDeflect:
		verb := "fwd"
		if e.Kind == probe.KindDeflect {
			verb = "DEFLECT"
		}
		return fmt.Sprintf("%s: pkt %d dom %d at %s out %v (%d flit)",
			verb, e.ID, e.Domain, at(e.Node), geom.Dir(e.Dir), e.Flits)
	default:
		s := fmt.Sprintf("%s: pkt %d dom %d %s→%s", e.Kind, e.ID, e.Domain, at(e.Src), at(e.Dst))
		if e.Kind == probe.KindEjected || e.Kind == probe.KindDropped {
			s += fmt.Sprintf(" (age %d)", e.Cycle-e.Created)
		}
		return s
	}
}

// recordRun executes a generated run with the tracer attached and
// returns the trace plus the run's total stats.
func recordRun(model config.Model, domains int, rate float64, cycles, seed int64) (string, stats.Domain, error) {
	cfg := config.Default(model)
	cfg.Domains = domains
	col := stats.NewCollector(domains, 0, 0)
	var buf strings.Builder
	tw := trace.New(&buf)
	col.SetTracer(tw.Tracer())
	meter := power.NewMeter(cfg, power.Default45nm())
	fab, err := sim.BuildFabric(cfg, nil, nil, col, meter)
	if err != nil {
		return "", stats.Domain{}, err
	}
	sources := make([]traffic.Source, domains)
	for i := range sources {
		sources[i] = traffic.Source{Rate: rate / float64(domains), Class: packet.Ctrl, VNet: -1}
	}
	gen := traffic.New(cfg.Mesh(), traffic.UniformRandom, sources, seed)
	now := int64(0)
	for ; now < cycles; now++ {
		gen.Tick(fab, now)
		fab.Step(now)
	}
	for limit := now + 50*cycles; now < limit && fab.InFlight() > 0; now++ {
		fab.Step(now)
	}
	if err := tw.Close(); err != nil {
		return "", stats.Domain{}, err
	}
	return buf.String(), col.Total(), nil
}

// replayRun feeds a trace into a fresh fabric of the given model.
func replayRun(model config.Model, domains int, mesh geom.Mesh, r io.Reader, stderr io.Writer) (stats.Domain, error) {
	cfg := config.Default(model)
	cfg.Domains = domains
	rp, err := traffic.NewReplayer(r, mesh, nil)
	if err != nil {
		return stats.Domain{}, err
	}
	col := stats.NewCollector(domains, 0, 0)
	meter := power.NewMeter(cfg, power.Default45nm())
	fab, err := sim.BuildFabric(cfg, nil, nil, col, meter)
	if err != nil {
		return stats.Domain{}, err
	}
	var fabric network.Fabric = fab
	for now := int64(0); !rp.Done() || fabric.InFlight() > 0; now++ {
		rp.Tick(fabric, now, mesh)
		fabric.Step(now)
		if now > 10_000_000 {
			return stats.Domain{}, fmt.Errorf("replay never drained")
		}
	}
	if rp.Refused > 0 {
		fmt.Fprintf(stderr, "replay: %d offers refused under backpressure (dropped)\n", rp.Refused)
	}
	return col.Total(), nil
}

func modelByName(s string) (config.Model, error) {
	switch strings.ToUpper(s) {
	case "WH":
		return config.WH, nil
	case "BLESS":
		return config.BLESS, nil
	case "SURF":
		return config.Surf, nil
	case "SB":
		return config.SB, nil
	case "CHIPPER":
		return config.CHIPPER, nil
	case "RUNAHEAD":
		return config.RUNAHEAD, nil
	default:
		return 0, fmt.Errorf("unknown model %q", s)
	}
}
