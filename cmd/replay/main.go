// Command replay records a packet trace from one network model and
// replays the identical population into another, printing both runs'
// statistics side by side — apples-to-apples comparison on exactly the
// same packets instead of statistically similar ones.
//
// Usage:
//
//	replay [-record BLESS] [-play SB] [-domains 2] [-rate 0.05]
//	       [-cycles 5000] [-seed 1] [-trace FILE]
//
// With -trace, the recorded CSV is also written to FILE (and can be fed
// back with -from FILE instead of recording).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"surfbless/internal/config"
	"surfbless/internal/geom"
	"surfbless/internal/network"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/sim"
	"surfbless/internal/stats"
	"surfbless/internal/trace"
	"surfbless/internal/traffic"
)

func main() {
	record := flag.String("record", "BLESS", "model to record from (ignored with -from)")
	play := flag.String("play", "SB", "model to replay into")
	domains := flag.Int("domains", 2, "number of domains")
	rate := flag.Float64("rate", 0.05, "total injection rate while recording")
	cycles := flag.Int64("cycles", 5000, "recording length in cycles")
	seed := flag.Int64("seed", 1, "random seed")
	traceOut := flag.String("trace", "", "write the recorded trace CSV to this file")
	from := flag.String("from", "", "replay from an existing trace file instead of recording")
	flag.Parse()

	playModel, err := modelByName(*play)
	if err != nil {
		fatal(err)
	}

	var traceCSV string
	mesh := geom.NewMesh(8, 8)
	if *from != "" {
		raw, err := os.ReadFile(*from)
		if err != nil {
			fatal(err)
		}
		traceCSV = string(raw)
		fmt.Printf("replaying %s into %v\n\n", *from, playModel)
	} else {
		recModel, err := modelByName(*record)
		if err != nil {
			fatal(err)
		}
		var recStats stats.Domain
		traceCSV, recStats, err = recordRun(recModel, *domains, *rate, *cycles, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %v: %d packets, avg latency %.2f\n",
			recModel, recStats.Ejected, recStats.AvgTotalLatency())
		if *traceOut != "" {
			if err := os.WriteFile(*traceOut, []byte(traceCSV), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("trace written to %s\n", *traceOut)
		}
	}

	playStats, err := replayRun(playModel, *domains, mesh, strings.NewReader(traceCSV))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed into %v: %d packets, avg latency %.2f (queue %.2f + network %.2f), %.3f deflections/pkt\n",
		playModel, playStats.Ejected, playStats.AvgTotalLatency(),
		playStats.AvgQueueLatency(), playStats.AvgNetworkLatency(), playStats.AvgDeflections())
}

// recordRun executes a generated run with the tracer attached and
// returns the trace plus the run's total stats.
func recordRun(model config.Model, domains int, rate float64, cycles, seed int64) (string, stats.Domain, error) {
	cfg := config.Default(model)
	cfg.Domains = domains
	col := stats.NewCollector(domains, 0, 0)
	var buf strings.Builder
	tw := trace.New(&buf)
	col.SetTracer(tw.Tracer())
	meter := power.NewMeter(cfg, power.Default45nm())
	fab, err := sim.BuildFabric(cfg, nil, nil, col, meter)
	if err != nil {
		return "", stats.Domain{}, err
	}
	sources := make([]traffic.Source, domains)
	for i := range sources {
		sources[i] = traffic.Source{Rate: rate / float64(domains), Class: packet.Ctrl, VNet: -1}
	}
	gen := traffic.New(cfg.Mesh(), traffic.UniformRandom, sources, seed)
	now := int64(0)
	for ; now < cycles; now++ {
		gen.Tick(fab, now)
		fab.Step(now)
	}
	for limit := now + 50*cycles; now < limit && fab.InFlight() > 0; now++ {
		fab.Step(now)
	}
	if err := tw.Close(); err != nil {
		return "", stats.Domain{}, err
	}
	return buf.String(), col.Total(), nil
}

// replayRun feeds a trace into a fresh fabric of the given model.
func replayRun(model config.Model, domains int, mesh geom.Mesh, r io.Reader) (stats.Domain, error) {
	cfg := config.Default(model)
	cfg.Domains = domains
	rp, err := traffic.NewReplayer(r, mesh, nil)
	if err != nil {
		return stats.Domain{}, err
	}
	col := stats.NewCollector(domains, 0, 0)
	meter := power.NewMeter(cfg, power.Default45nm())
	fab, err := sim.BuildFabric(cfg, nil, nil, col, meter)
	if err != nil {
		return stats.Domain{}, err
	}
	var fabric network.Fabric = fab
	for now := int64(0); !rp.Done() || fabric.InFlight() > 0; now++ {
		rp.Tick(fabric, now, mesh)
		fabric.Step(now)
		if now > 10_000_000 {
			return stats.Domain{}, fmt.Errorf("replay never drained")
		}
	}
	if rp.Refused > 0 {
		fmt.Fprintf(os.Stderr, "replay: %d offers refused under backpressure (dropped)\n", rp.Refused)
	}
	return col.Total(), nil
}

func modelByName(s string) (config.Model, error) {
	switch strings.ToUpper(s) {
	case "WH":
		return config.WH, nil
	case "BLESS":
		return config.BLESS, nil
	case "SURF":
		return config.Surf, nil
	case "SB":
		return config.SB, nil
	case "CHIPPER":
		return config.CHIPPER, nil
	case "RUNAHEAD":
		return config.RUNAHEAD, nil
	default:
		return 0, fmt.Errorf("unknown model %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replay:", err)
	os.Exit(1)
}
