// Command sweepworker is one member of the sweep-service fleet: it
// pulls lease-based work units from a cmd/sweepd coordinator, runs
// each point's simulation (with per-job timeouts and seeded-backoff
// retries), and reports typed ok/degraded/failed rows back.
//
// Usage:
//
//	sweepworker -coordinator 127.0.0.1:8080 [-name host-pid]
//	            [-slots N] [-prefetch N]
//	            [-cache-dir results/.simcache] [-no-cache]
//	            [-seed 0]
//
// Fault tolerance (DESIGN.md §16):
//
//   - Leases are renewed at a third of their TTL; if this process is
//     SIGKILL'd, the coordinator requeues its leases after the TTL and
//     nothing is lost.
//   - SIGTERM/SIGINT drains gracefully: in-flight points finish and
//     report, queued leases are released immediately, then the process
//     exits 0.  A second signal exits hard.
//   - Coordinator outages (a bounce mid-sweep) look like slow RPCs:
//     acquisitions and completion reports retry with seeded
//     exponential backoff + jitter.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"surfbless/internal/simcache"
	"surfbless/internal/sweepsvc"
	"surfbless/internal/sweepsvc/backoff"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweepworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	coordAddr := fs.String("coordinator", "127.0.0.1:8080", "sweepd address (host:port)")
	name := fs.String("name", "", "worker name reported to the coordinator (default host-pid)")
	slots := fs.Int("slots", runtime.NumCPU(), "points simulated concurrently")
	prefetch := fs.Int("prefetch", 0, "extra leases held queued so slots never idle")
	cacheDir := fs.String("cache-dir", filepath.Join("results", ".simcache"), "shared result-store directory")
	noCache := fs.Bool("no-cache", false, "run without the shared result store")
	seed := fs.Int64("seed", 0, "backoff jitter seed (default derived from pid)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fatal := func(err error) int {
		fmt.Fprintln(stderr, "sweepworker:", err)
		return 1
	}

	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if *seed == 0 {
		// De-synchronize fleet retries without breaking determinism of
		// the simulations themselves (point seeds come from the spec).
		*seed = int64(os.Getpid())
	}

	var cache *simcache.Cache
	if !*noCache {
		var err error
		if cache, err = simcache.New(simcache.Options{Dir: *cacheDir}); err != nil {
			return fatal(err)
		}
	}

	policy := backoff.Policy{Seed: *seed}
	w, err := sweepsvc.NewWorker(sweepsvc.WorkerOptions{
		Name:   *name,
		Client: sweepsvc.NewClient(*coordAddr),
		Runner: &sweepsvc.Runner{
			Cache:  cache,
			Policy: policy,
			OnRetry: func(rate float64, attempt int, err error) {
				fmt.Fprintf(stderr, "sweepworker: rate %.3f attempt %d failed (%v), backing off\n", rate, attempt, err)
			},
		},
		Slots:    *slots,
		Prefetch: *prefetch,
		Backoff:  policy,
		Hooks: &sweepsvc.WorkerHooks{
			PointFinished: func(l sweepsvc.Lease, exec sweepsvc.Execution) {
				fmt.Fprintf(stderr, "sweepworker: %s point %d (rate %.3f): %s\n", l.Job, l.Point, l.Rate, exec.Status)
			},
			Drained: func(released int) {
				fmt.Fprintf(stderr, "sweepworker: drained (released %d queued lease(s))\n", released)
			},
		},
	})
	if err != nil {
		return fatal(err)
	}

	ctx, hardStop := context.WithCancel(context.Background())
	defer hardStop()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(stderr, "sweepworker: %v — draining (finish in-flight, release the rest); signal again to exit hard\n", s)
		w.Drain()
		<-sig
		fmt.Fprintln(stderr, "sweepworker: second signal — exiting hard")
		hardStop()
	}()

	fmt.Fprintf(stderr, "sweepworker: %s pulling from %s (%d slot(s))\n", *name, *coordAddr, *slots)
	start := time.Now()
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		return fatal(err)
	}
	fmt.Fprintf(stderr, "sweepworker: done after %v\n", time.Since(start).Round(time.Millisecond))
	return 0
}
