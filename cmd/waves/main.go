// Command waves inspects Surf-Bless wave schedules: it renders the
// Figure-3 style wave animation for any mesh/hop-delay, and analyzes a
// wave→domain assignment — per-domain slot share, worm turn rows, and
// the worst-case north/west detour that drives the deflection penalty
// (DESIGN.md §6).
//
// Usage:
//
//	waves [-n 8] [-p 3] [-wave 0] [-frames 6]            # render
//	waves -n 8 -p 3 -analyze -domains 3 -size 5          # analyze §5.2-style sets
//	waves -analyze -sets paper                           # the paper's literal sets
package main

import (
	"flag"
	"fmt"
	"os"

	"surfbless/internal/geom"
	"surfbless/internal/wave"
)

func main() {
	n := flag.Int("n", 4, "mesh dimension (N×N)")
	p := flag.Int("p", 1, "hop delay P in cycles")
	waveIdx := flag.Int("wave", 0, "wave index to render")
	frames := flag.Int("frames", 0, "frames to render (0 = one full period)")
	analyze := flag.Bool("analyze", false, "analyze a wave-set assignment instead of rendering")
	domains := flag.Int("domains", 3, "analyze: number of domains (1 ctrl + rest data)")
	size := flag.Int("size", 5, "analyze: worm window width in waves")
	sets := flag.String("sets", "tuned", "analyze: tuned | paper | roundrobin")
	flag.Parse()

	mesh := geom.NewMesh(*n, *n)
	sched := wave.New(mesh, *p)
	if !*analyze {
		count := *frames
		if count <= 0 {
			count = sched.Smax()
		}
		fmt.Printf("N=%d P=%d Smax=%d, tracking wave %d for %d frames\n\n",
			*n, *p, sched.Smax(), *waveIdx, count)
		for i := 0; i < count; i++ {
			fmt.Println(wave.RenderWave(sched, *waveIdx, int64(i)))
		}
		return
	}

	dec, err := buildDecoder(sched.Smax(), *p, *domains, *size, *sets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "waves:", err)
		os.Exit(1)
	}
	fmt.Printf("schedule: N=%d P=%d Smax=%d, %d domains, %q sets, worm width %d\n\n",
		*n, *p, sched.Smax(), dec.Domains(), *sets, *size)
	for dom := 0; dom < dec.Domains(); dom++ {
		width := *size
		if dom == 0 && *sets != "roundrobin" {
			width = 1 // control domain carries 1-flit packets
		}
		fmt.Printf("domain %d: share %.1f%%, %d startable %d-wide windows, worst N/W detour %d rows\n",
			dom, 100*wave.DomainShare(dec, dom), dec.StartableSlots(dom, width), width,
			wave.WorstDetour(dec, *p, *n, dom, width))
		for _, s := range dec.Owned(dom) {
			if !dec.CanStart(s, width) {
				continue
			}
			fmt.Printf("  window @%2d turns at rows %v\n", s, wave.TurnRows(dec, *p, *n, dom, s, width))
		}
	}
}

// buildDecoder assembles the requested wave→domain assignment.
func buildDecoder(smax, p, domains, size int, kind string) (*wave.Decoder, error) {
	switch kind {
	case "roundrobin":
		return wave.RoundRobin(smax, domains), nil
	case "tuned", "paper":
		if domains < 2 {
			return nil, fmt.Errorf("wave sets need ≥ 2 domains (1 ctrl + data)")
		}
		starts := make([][]int, domains-1)
		if kind == "paper" {
			if smax != 42 || domains != 3 {
				return nil, fmt.Errorf("the paper's literal sets exist for Smax=42, 3 domains")
			}
			starts[0] = []int{0, 15, 30}
			starts[1] = []int{7, 22, 37}
		} else {
			stride := 2 * p
			if stride <= size {
				return nil, fmt.Errorf("stride 2P=%d cannot hold a %d-wide window", stride, size)
			}
			for d := range starts {
				for k := 0; k < 3; k++ {
					s := (k*(domains-1) + d) * stride
					if s+size > smax {
						return nil, fmt.Errorf("Smax=%d too small for %d data domains", smax, domains-1)
					}
					starts[d] = append(starts[d], s)
				}
			}
		}
		used := map[int]bool{}
		out := make([][]int, domains)
		for d, ss := range starts {
			for _, s := range ss {
				for w := s; w < s+size; w++ {
					out[d+1] = append(out[d+1], w)
					used[w] = true
				}
			}
		}
		for w := 0; w < smax; w++ {
			if !used[w] {
				out[0] = append(out[0], w)
			}
		}
		return wave.FromSets(smax, out)
	default:
		return nil, fmt.Errorf("unknown sets %q (want tuned, paper or roundrobin)", kind)
	}
}
