// Command experiments regenerates every table and figure of the
// paper's evaluation (§5) plus the reproduction's ablations, printing
// each as an aligned text table and optionally writing .txt/.csv files.
//
// Usage:
//
//	experiments [-scale tiny|quick|full] [-fig all|table1|fig5|fig6|fig7|apps|ablations|extensions|faults|wcta] [-out DIR]
//	            [-cache] [-cache-dir DIR] [-no-cache] [-shards N]
//	            [-http ADDR] [-progress] [-probe-dir DIR] [-probe-every N]
//
// -shards N steps every synthetic point's mesh as N parallel tiles
// (see DESIGN.md §17) — bit-identical to serial stepping, so tables,
// cache keys and golden outputs are unchanged; it only helps wall-clock
// on the big-mesh sweeps (ablations at -scale full).
//
// "apps" runs the §5.2 full-system matrix that produces Figs. 8, 9 and
// 10 together.  At -scale full expect several minutes.  "faults" runs
// the robustness extension: the Fig. 5 victim/aggressor setup crossed
// with fault scenarios (see internal/fault and DESIGN.md §11).  "wcta"
// runs the analytical-bound conformance oracle: per-flow worst-case
// bounds from internal/wcta checked against observed p100 latencies
// (see DESIGN.md §14).
//
// Robustness: each experiment is isolated — a failure (or panic) is
// retried once, then reported and skipped so the rest of the batch
// still completes; the process exits nonzero if anything failed.
//
// Every simulation is a pure function of its options, so results are
// cached content-addressed under -cache-dir (default
// results/.simcache); regenerating an unchanged figure is near-instant
// on the second run.  -no-cache forces fresh simulations.
//
// Live introspection: -http ADDR serves /progress (JSON point counts
// and ETA), /debug/vars and /debug/pprof/* while the run is in flight;
// -progress prints a structured progress line to stderr every few
// seconds for headless runs.  -probe-dir DIR additionally re-runs the
// Fig. 5 interference experiment with a probe attached, writing
// per-interval time-series JSONL and heatmap CSV files into DIR
// (bucket width -probe-every cycles).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"surfbless/internal/experiments"
	"surfbless/internal/probe"
	"surfbless/internal/simcache"
	"surfbless/internal/textplot"
)

func main() { os.Exit(mainExperiments()) }

func mainExperiments() int {
	scaleName := flag.String("scale", "quick", "simulation scale: tiny, quick or full")
	fig := flag.String("fig", "all", "which experiment: all, table1, fig3, fig5, fig6, fig7, apps, ablations, extensions, faults, wcta")
	out := flag.String("out", "", "directory to write .txt and .csv outputs (optional)")
	useCache := flag.Bool("cache", true, "reuse cached simulation results")
	cacheDir := flag.String("cache-dir", filepath.Join("results", ".simcache"), "result-cache directory")
	noCache := flag.Bool("no-cache", false, "run every simulation fresh (overrides -cache)")
	shards := flag.Int("shards", 1, "mesh tiles stepped in parallel per synthetic point (bit-identical to serial)")
	httpAddr := flag.String("http", "", "serve /progress, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:6060)")
	progress := flag.Bool("progress", false, "print a structured progress line to stderr every 5s")
	probeDir := flag.String("probe-dir", "", "write probed Fig. 5 time series (JSONL) and heatmaps (CSV) into this directory")
	probeEvery := flag.Int64("probe-every", probe.DefaultEvery, "probe bucket width in cycles for -probe-dir")
	flag.Parse()

	sc, err := scaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	if *shards < 1 {
		fatal(fmt.Errorf("-shards %d, need ≥ 1", *shards))
	}
	experiments.SetShards(*shards)
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		// Failed runs (WCTA conformance violations) leave forensic
		// flight-recorder dumps next to the figure outputs; replay them
		// with `replay -flight FILE`.
		experiments.SetFlightDir(*out)
	}
	var cache *simcache.Cache
	if *useCache && !*noCache {
		if cache, err = simcache.New(simcache.Options{Dir: *cacheDir}); err != nil {
			fatal(err)
		}
		experiments.SetCache(cache)
		defer func() {
			fmt.Fprintf(os.Stderr, "cache (%s): %v\n", *cacheDir, cache.Stats())
		}()
	}

	g := probe.NewProgress()
	experiments.SetProgress(g)
	if cache != nil {
		g.SetCacheStats(func() (int64, int64) {
			s := cache.Stats()
			return s.Hits, s.Misses
		})
	}
	if *httpAddr != "" {
		metrics := probe.NewMetrics()
		if cache != nil {
			cache.ExposeMetrics(metrics)
		}
		srv, err := probe.Serve(*httpAddr, g, metrics)
		if err != nil {
			fatal(err)
		}
		defer srv.Close() //nolint:errcheck // releases the listener on the way out
		fmt.Fprintf(os.Stderr, "introspection: http://%s/progress (metrics at /metrics)\n", srv.Addr())
	}
	if *progress {
		stop := g.Report(os.Stderr, 5*time.Second)
		defer stop()
	}

	// Per-experiment isolation: one failing figure (error or panic)
	// must not sink a multi-hour batch.  Each experiment is retried
	// once, then recorded as failed and skipped; the exit code reports
	// the damage at the end.
	var failed []string
	run := func(name string, f func() ([]*textplot.Table, error)) {
		if *fig != "all" && *fig != name {
			return
		}
		g.SetStage(name)
		start := time.Now()
		tabs, err := runIsolated(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed (%v), retrying once\n", name, err)
			tabs, err = runIsolated(f)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed twice: %v — skipping\n", name, err)
			failed = append(failed, name)
			return
		}
		for _, t := range tabs {
			fmt.Println(t.String())
			if *out != "" {
				base := filepath.Join(*out, name+"_"+slug(t.Title))
				if err := os.WriteFile(base+".txt", []byte(t.String()), 0o644); err != nil {
					fatal(err)
				}
				if err := os.WriteFile(base+".csv", []byte(t.CSV()), 0o644); err != nil {
					fatal(err)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() ([]*textplot.Table, error) {
		return []*textplot.Table{experiments.Table1()}, nil
	})
	if *fig == "all" || *fig == "fig3" {
		text := experiments.Fig3Text()
		fmt.Println(text)
		if *out != "" {
			if err := os.WriteFile(filepath.Join(*out, "fig3_wave_pattern.txt"), []byte(text), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	run("fig5", func() ([]*textplot.Table, error) {
		r, err := experiments.Fig5(sc)
		if err != nil {
			return nil, err
		}
		return r.Tables(), nil
	})
	run("fig6", func() ([]*textplot.Table, error) {
		r, err := experiments.Fig6(sc)
		if err != nil {
			return nil, err
		}
		return r.Tables(), nil
	})
	run("fig7", func() ([]*textplot.Table, error) {
		r, err := experiments.Fig7(sc)
		if err != nil {
			return nil, err
		}
		return r.Tables(), nil
	})
	run("apps", func() ([]*textplot.Table, error) {
		r, err := experiments.Apps(sc)
		if err != nil {
			return nil, err
		}
		tabs := r.Tables()
		fmt.Fprintf(os.Stderr, "SB exec penalty vs WH: %+.2f%% (paper: +3.23%%)\n", r.SBExecPenalty()*100)
		fmt.Fprintf(os.Stderr, "SB energy saving vs WH: %.1f%% (paper: 53.6%%)\n", r.SBEnergySaving()*100)
		return tabs, nil
	})
	run("ablations", func() ([]*textplot.Table, error) {
		var tabs []*textplot.Table
		ws, err := experiments.AblationWaveSets(sc)
		if err != nil {
			return nil, err
		}
		tabs = append(tabs, experiments.WaveSetTable(ws))
		rt, err := experiments.AblationRouting(sc)
		if err != nil {
			return nil, err
		}
		tabs = append(tabs, experiments.RoutingTable(rt))
		ms, err := experiments.AblationMeshSweep(sc)
		if err != nil {
			return nil, err
		}
		tabs = append(tabs, experiments.MeshTable(ms))
		return tabs, nil
	})
	run("faults", func() ([]*textplot.Table, error) {
		r, err := experiments.ConfinementUnderFaults(sc)
		if err != nil {
			return nil, err
		}
		return r.Tables(), nil
	})
	run("wcta", func() ([]*textplot.Table, error) {
		rows, err := experiments.WCTAConformance(sc)
		if err != nil {
			return nil, err
		}
		return []*textplot.Table{experiments.WCTATable(rows)}, nil
	})
	run("extensions", func() ([]*textplot.Table, error) {
		var tabs []*textplot.Table
		bl, err := experiments.ExtensionBufferless(sc)
		if err != nil {
			return nil, err
		}
		tabs = append(tabs, experiments.BufferlessTable(bl))
		pr, err := experiments.ExtensionPatterns(sc)
		if err != nil {
			return nil, err
		}
		tabs = append(tabs, experiments.PatternTable(pr))
		return tabs, nil
	})
	if *probeDir != "" {
		g.SetStage("fig5-probe")
		start := time.Now()
		if err := experiments.Fig5Probe(sc, *probeEvery, *probeDir); err != nil {
			fatal(fmt.Errorf("fig5 probe: %w", err))
		}
		fmt.Fprintf(os.Stderr, "[fig5-probe done in %v; series and heatmaps in %s]\n",
			time.Since(start).Round(time.Millisecond), *probeDir)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) failed: %s\n",
			len(failed), strings.Join(failed, ", "))
		return 1
	}
	return 0
}

// runIsolated runs one experiment behind a recover boundary so a
// driver panic is reported like any other error.
func runIsolated(f func() ([]*textplot.Table, error)) (tabs []*textplot.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return f()
}

func scaleByName(name string) (experiments.Scale, error) {
	switch name {
	case "tiny":
		return experiments.Tiny(), nil
	case "quick":
		return experiments.Quick(), nil
	case "full":
		return experiments.Full(), nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q (want tiny, quick or full)", name)
	}
}

func slug(title string) string {
	s := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, strings.ToLower(strings.TrimSpace(title)))
	for strings.Contains(s, "__") {
		s = strings.ReplaceAll(s, "__", "_")
	}
	s = strings.Trim(s, "_")
	if len(s) > 48 {
		s = s[:48]
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
