// Command sweepd is the sweep-service coordinator: it accepts sweep
// job specs over HTTP, shards them into lease-based work units for a
// cmd/sweepworker fleet, and journals every state transition to a
// crash-safe WAL so a restart mid-sweep resumes exactly where it
// stopped — zero lost and zero duplicated points (DESIGN.md §16).
//
// Usage:
//
//	sweepd [-addr 127.0.0.1:8080] [-wal results/sweepd.wal]
//	       [-cache-dir results/.simcache] [-no-cache]
//	       [-lease-ttl 10s]
//
// Endpoints: POST/GET /api/jobs, GET /api/jobs/{id}[/csv], POST
// /api/lease|renew|release|complete, /healthz, and /metrics exposing
// the lease/requeue/completion/singleflight counters in Prometheus
// text format.
//
// Submit with `sweep -remote ADDR <usual sweep flags>`, or directly:
//
//	curl -d '{"spec":{"model":"SB","domains":2,"from":0.02,"to":0.1,
//	          "step":0.02,"cycles":10000,"seed":1}}' \
//	     http://127.0.0.1:8080/api/jobs
//
// SIGINT/SIGTERM shut the listener down; the WAL already holds every
// acknowledged transition, so a later restart with the same -wal
// resumes the open jobs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"surfbless/internal/probe"
	"surfbless/internal/simcache"
	"surfbless/internal/sweepsvc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	walPath := fs.String("wal", filepath.Join("results", "sweepd.wal"), "crash-safe job/point journal")
	cacheDir := fs.String("cache-dir", filepath.Join("results", ".simcache"), "shared result-store directory")
	noCache := fs.Bool("no-cache", false, "run without the shared result store")
	leaseTTL := fs.Duration("lease-ttl", sweepsvc.DefaultLeaseTTL, "lease lifetime between worker heartbeats")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fatal := func(err error) int {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}

	var store *simcache.Cache
	if !*noCache {
		var err error
		if store, err = simcache.New(simcache.Options{Dir: *cacheDir}); err != nil {
			return fatal(err)
		}
	}
	if dir := filepath.Dir(*walPath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fatal(err)
		}
	}

	metrics := probe.NewMetrics()
	if store != nil {
		store.ExposeMetrics(metrics)
	}
	coord, err := sweepsvc.OpenCoordinator(sweepsvc.CoordinatorOptions{
		WALPath:  *walPath,
		Store:    store,
		LeaseTTL: *leaseTTL,
		Metrics:  metrics,
	})
	if err != nil {
		return fatal(err)
	}
	defer coord.Close()
	if n := coord.Skipped(); n > 0 {
		fmt.Fprintf(stderr, "sweepd: wal: %d torn line(s) dropped at open\n", n)
	}
	if jobs := coord.Jobs(); len(jobs) > 0 {
		fmt.Fprintf(stderr, "sweepd: resumed %d job(s) from %s\n", len(jobs), *walPath)
	}

	srv, err := sweepsvc.NewServer(*addr, coord, metrics)
	if err != nil {
		return fatal(err)
	}
	fmt.Fprintf(stderr, "sweepd: serving on http://%s (wal %s, lease ttl %v)\n", srv.Addr(), *walPath, *leaseTTL)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(stderr, "sweepd: %v — shutting down (journal is durable; restart with the same -wal to resume)\n", s)
	if err := srv.Close(); err != nil {
		return fatal(err)
	}
	return 0
}
