// Command surfbless runs one synthetic-traffic NoC simulation and
// prints the per-domain statistics and the energy report.
//
// Usage:
//
//	surfbless [-model SB] [-domains 2] [-rate 0.05] [-pattern uniform]
//	          [-cycles 20000] [-warmup 1000] [-seed 1] [-size 8]
//
// The offered load (-rate, packets/node/cycle) is split evenly across
// the domains, as in the paper's §5.1 experiments.
package main

import (
	"flag"
	"fmt"
	"os"

	"surfbless/internal/config"
	"surfbless/internal/packet"
	"surfbless/internal/sim"
	"surfbless/internal/textplot"
	"surfbless/internal/traffic"
)

func main() {
	model := flag.String("model", "SB", "network model: WH, BLESS, Surf or SB")
	domains := flag.Int("domains", 2, "number of interference domains")
	rate := flag.Float64("rate", 0.05, "total injection rate (packets/node/cycle)")
	pattern := flag.String("pattern", "uniform", "traffic pattern: uniform, transpose, bitcomp, hotspot")
	cycles := flag.Int64("cycles", 20000, "measured cycles")
	warmup := flag.Int64("warmup", 1000, "warm-up cycles")
	seed := flag.Int64("seed", 1, "random seed")
	size := flag.Int("size", 8, "mesh dimension (N for an N×N mesh)")
	cfgPath := flag.String("config", "", "JSON configuration file (overrides -model/-domains/-size)")
	flag.Parse()

	p, err := patternByName(*pattern)
	if err != nil {
		fatal(err)
	}
	var cfg config.Config
	if *cfgPath != "" {
		if cfg, err = config.Load(*cfgPath); err != nil {
			fatal(err)
		}
		*domains = cfg.Domains
	} else {
		m, err := modelByName(*model)
		if err != nil {
			fatal(err)
		}
		cfg = config.Default(m)
		cfg.Domains = *domains
		cfg.Width, cfg.Height = *size, *size
	}
	m := cfg.Model

	sources := make([]traffic.Source, *domains)
	for i := range sources {
		sources[i] = traffic.Source{Rate: *rate / float64(*domains), Class: packet.Ctrl, VNet: -1}
	}
	res, err := sim.Run(sim.Options{
		Cfg:     cfg,
		Pattern: p,
		Sources: sources,
		Warmup:  *warmup, Measure: *cycles, Drain: 20 * *cycles,
		Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	t := textplot.NewTable(
		fmt.Sprintf("%v, %dx%d mesh, %d domain(s), %s traffic at %.3f pkts/node/cycle",
			m, cfg.Width, cfg.Height, *domains, p, *rate),
		"domain", "ejected", "avg_latency", "queue", "network", "hops", "deflections", "throughput")
	for d, dom := range res.Domains {
		t.Row(fmt.Sprintf("D%d", d),
			fmt.Sprintf("%d", dom.Ejected),
			textplot.F(dom.AvgTotalLatency()),
			textplot.F(dom.AvgQueueLatency()),
			textplot.F(dom.AvgNetworkLatency()),
			textplot.F(dom.AvgHops()),
			textplot.F(dom.AvgDeflections()),
			textplot.F(res.Throughput(d)))
	}
	tot := res.Total
	t.Row("total",
		fmt.Sprintf("%d", tot.Ejected),
		textplot.F(tot.AvgTotalLatency()),
		textplot.F(tot.AvgQueueLatency()),
		textplot.F(tot.AvgNetworkLatency()),
		textplot.F(tot.AvgHops()),
		textplot.F(tot.AvgDeflections()),
		"-")
	fmt.Println(t.String())
	fmt.Printf("energy over %d cycles: %v\n", res.Cycles, res.Energy)
	if res.LeftInFlight > 0 {
		fmt.Printf("warning: %d packets still in flight after the drain budget (saturated?)\n", res.LeftInFlight)
	}
}

func modelByName(s string) (config.Model, error) {
	switch s {
	case "WH", "wh":
		return config.WH, nil
	case "BLESS", "bless":
		return config.BLESS, nil
	case "Surf", "surf":
		return config.Surf, nil
	case "SB", "sb":
		return config.SB, nil
	default:
		return 0, fmt.Errorf("unknown model %q (want WH, BLESS, Surf or SB)", s)
	}
}

func patternByName(s string) (traffic.Pattern, error) {
	switch s {
	case "uniform":
		return traffic.UniformRandom, nil
	case "transpose":
		return traffic.Transpose, nil
	case "bitcomp":
		return traffic.BitComplement, nil
	case "hotspot":
		return traffic.Hotspot, nil
	default:
		return 0, fmt.Errorf("unknown pattern %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "surfbless:", err)
	os.Exit(1)
}
