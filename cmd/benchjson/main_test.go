package main

import "testing"

func TestParseBench(t *testing.T) {
	b, ok := parseBench("BenchmarkStepSB-8   \t 1000000\t      1234 ns/op\t        64.00 routers/cycle")
	if !ok {
		t.Fatal("line not recognized")
	}
	if b.Name != "BenchmarkStepSB" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", b.Name)
	}
	if b.Iters != 1000000 || b.NsPerOp != 1234 {
		t.Errorf("iters/ns = %d/%v", b.Iters, b.NsPerOp)
	}
	if b.Metrics["routers/cycle"] != 64 {
		t.Errorf("metrics = %v", b.Metrics)
	}

	for _, line := range []string{
		"PASS",
		"ok  \tsurfbless\t0.1s",
		"goos: linux",
		"BenchmarkBroken-8 notanumber 12 ns/op",
	} {
		if _, ok := parseBench(line); ok {
			t.Errorf("line %q wrongly parsed as a benchmark", line)
		}
	}
}

func TestHeaderLine(t *testing.T) {
	k, v, ok := headerLine("cpu: Intel(R) Xeon(R)")
	if !ok || k != "cpu" || v != "Intel(R) Xeon(R)" {
		t.Errorf("headerLine = %q %q %v", k, v, ok)
	}
	if _, _, ok := headerLine("BenchmarkX-8 1 2 ns/op"); ok {
		t.Error("benchmark line parsed as header")
	}
}
