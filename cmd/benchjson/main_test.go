package main

import (
	"io"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	b, ok := parseBench("BenchmarkStepSB-8   \t 1000000\t      1234 ns/op\t        64.00 routers/cycle")
	if !ok {
		t.Fatal("line not recognized")
	}
	if b.Name != "BenchmarkStepSB" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", b.Name)
	}
	if b.Iters != 1000000 || b.NsPerOp != 1234 {
		t.Errorf("iters/ns = %d/%v", b.Iters, b.NsPerOp)
	}
	if b.Metrics["routers/cycle"] != 64 {
		t.Errorf("metrics = %v", b.Metrics)
	}

	for _, line := range []string{
		"PASS",
		"ok  \tsurfbless\t0.1s",
		"goos: linux",
		"BenchmarkBroken-8 notanumber 12 ns/op",
	} {
		if _, ok := parseBench(line); ok {
			t.Errorf("line %q wrongly parsed as a benchmark", line)
		}
	}
}

func TestHeaderLine(t *testing.T) {
	k, v, ok := headerLine("cpu: Intel(R) Xeon(R)")
	if !ok || k != "cpu" || v != "Intel(R) Xeon(R)" {
		t.Errorf("headerLine = %q %q %v", k, v, ok)
	}
	if _, _, ok := headerLine("BenchmarkX-8 1 2 ns/op"); ok {
		t.Error("benchmark line parsed as header")
	}
}

func TestProbeOverhead(t *testing.T) {
	benches := []Bench{
		{Name: "BenchmarkStepSB", NsPerOp: 5000},
		{Name: "BenchmarkStepSBProbed", NsPerOp: 5250},
		{Name: "BenchmarkStepWH", NsPerOp: 4000},
		{Name: "BenchmarkStepWHProbed", NsPerOp: 4200},
		{Name: "BenchmarkStepSurf", NsPerOp: 3000},
		{Name: "BenchmarkStepSurfProbed", NsPerOp: 3600},
		{Name: "BenchmarkStepBLESS", NsPerOp: 2000}, // no Probed pair
		{Name: "BenchmarkSystemCycle", NsPerOp: 999},
	}
	ratios := probeOverhead(benches)
	for model, want := range map[string]float64{"SB": 1.05, "WH": 1.05, "Surf": 1.2} {
		if got := ratios[model]; got < want-1e-9 || got > want+1e-9 {
			t.Errorf("ratio[%s] = %v, want %v", model, got, want)
		}
	}
	if _, ok := ratios["BLESS"]; ok {
		t.Error("unpaired BLESS got a ratio")
	}

	// An interleaved Overhead benchmark's probed/unprobed metric beats
	// the ns/op pair ratio for the same model.
	withOverhead := append(benches,
		Bench{Name: "BenchmarkStepSBOverhead", NsPerOp: 5100,
			Metrics: map[string]float64{"probed/unprobed": 1.02, "routers/cycle": 64}},
		Bench{Name: "BenchmarkStepCHIPPEROverhead", NsPerOp: 7000,
			Metrics: map[string]float64{"routers/cycle": 64}}, // no ratio metric
	)
	mixed := probeOverhead(withOverhead)
	if got := mixed["SB"]; got != 1.02 {
		t.Errorf("SB ratio = %v, want the interleaved 1.02 over the 1.05 pair", got)
	}
	if got := mixed["WH"]; got < 1.05-1e-9 || got > 1.05+1e-9 {
		t.Errorf("WH ratio = %v, want the 1.05 pair fallback", got)
	}
	if _, ok := mixed["CHIPPER"]; ok {
		t.Error("Overhead entry without a probed/unprobed metric got a ratio")
	}

	if err := gateProbe(ratios, 1.25, io.Discard); err != nil {
		t.Errorf("all ratios within 1.25x budget, yet: %v", err)
	}
	err := gateProbe(ratios, 1.10, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "Surf 1.200x") {
		t.Errorf("Surf at 1.2x passed a 1.10x gate: %v", err)
	}
	delete(ratios, "WH")
	if err := gateProbe(ratios, 1.25, io.Discard); err == nil {
		t.Error("missing WH pair passed the gate")
	}
}

func TestProbeOverheadEmpty(t *testing.T) {
	if r := probeOverhead(nil); r != nil {
		t.Errorf("no benchmarks produced ratios %v", r)
	}
}
