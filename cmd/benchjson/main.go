// Command benchjson converts `go test -bench` output into a
// machine-readable JSON report, echoing the original output through so
// it still reads normally in a terminal or CI log.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x . | benchjson -o BENCH_2026-08-05.json
//
// Every "Benchmark..." result line becomes one entry with the
// benchmark name (GOMAXPROCS suffix stripped), iteration count,
// ns/op, and any extra b.ReportMetric metrics keyed by unit.  The
// surrounding goos/goarch/pkg header lines are captured too, so a
// report is self-describing when diffing runs across machines.
//
// Probe-overhead gate: a BenchmarkStep<M>Overhead entry reporting a
// "probed/unprobed" metric (the interleaved twin-rig benchmark, robust
// to machine drift) contributes that metric to the report's
// probe_overhead map; absent one, a BenchmarkStep<M> /
// BenchmarkStep<M>Probed pair contributes its ns/op ratio.  -gate-probe
// MAX additionally enforces the observability budget: SB, WH and Surf
// must all have a measured ratio and every ratio must stay ≤ MAX, or
// the command exits 1 — this is what `make probe-overhead` runs in CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Bench is one benchmark result line.
type Bench struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go_version"`
	Env        map[string]string `json:"env,omitempty"` // goos, goarch, pkg, cpu
	Benchmarks []Bench           `json:"benchmarks"`
	// ProbeOverhead maps each fabric with both a plain and a Probed
	// Step benchmark to probed/unprobed ns-per-op.
	ProbeOverhead map[string]float64 `json:"probe_overhead,omitempty"`
}

// gatedModels are the fabrics whose probed Step overhead is enforced
// by -gate-probe (the paper's models; CHIPPER/RUNAHEAD extensions are
// reported but not gated).
var gatedModels = []string{"SB", "WH", "Surf"}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout only)")
	gate := flag.Float64("gate-probe", 0, "fail if any SB/WH/Surf probed-Step ratio exceeds this (0 disables)")
	flag.Parse()

	rep := Report{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Env:       map[string]string{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // echo through
		if k, v, ok := headerLine(line); ok {
			rep.Env[k] = v
			continue
		}
		if b, ok := parseBench(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	rep.ProbeOverhead = probeOverhead(rep.Benchmarks)
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(rep.Benchmarks), *out)
	}
	if *gate > 0 {
		if err := gateProbe(rep.ProbeOverhead, *gate, os.Stderr); err != nil {
			fatal(err)
		}
	}
}

// probeOverhead returns probed/unprobed Step ratios keyed by model.
// A BenchmarkStep<M>Overhead entry's "probed/unprobed" metric (the
// interleaved twin-rig measurement) wins; a BenchmarkStep<M> /
// BenchmarkStep<M>Probed ns-per-op pair fills in models without one.
func probeOverhead(benches []Bench) map[string]float64 {
	ns := map[string]float64{}
	for _, b := range benches {
		ns[b.Name] = b.NsPerOp
	}
	ratios := map[string]float64{}
	for name, probed := range ns {
		model, ok := strings.CutSuffix(name, "Probed")
		if !ok {
			continue
		}
		plain, ok := ns[model]
		if !ok || plain <= 0 {
			continue
		}
		ratios[strings.TrimPrefix(model, "BenchmarkStep")] = probed / plain
	}
	for _, b := range benches {
		model, ok := strings.CutSuffix(b.Name, "Overhead")
		if !ok {
			continue
		}
		r, ok := b.Metrics["probed/unprobed"]
		if !ok || r <= 0 {
			continue
		}
		ratios[strings.TrimPrefix(model, "BenchmarkStep")] = r
	}
	if len(ratios) == 0 {
		return nil
	}
	return ratios
}

// gateProbe enforces the observability budget: every gated model must
// have a measured ratio, and none may exceed maxRatio.
func gateProbe(ratios map[string]float64, maxRatio float64, w io.Writer) error {
	var over []string
	for _, m := range gatedModels {
		r, ok := ratios[m]
		if !ok {
			return fmt.Errorf("gate-probe: no BenchmarkStep%s / BenchmarkStep%sProbed pair in the input", m, m)
		}
		fmt.Fprintf(w, "benchjson: probe overhead %-5s %.3fx (budget %.2fx)\n", m, r, maxRatio)
		if r > maxRatio {
			over = append(over, fmt.Sprintf("%s %.3fx", m, r))
		}
	}
	if len(over) > 0 {
		return fmt.Errorf("gate-probe: probed Step exceeds %.2fx budget: %s", maxRatio, strings.Join(over, ", "))
	}
	return nil
}

// headerLine recognizes the goos/goarch/pkg/cpu preamble.
func headerLine(line string) (key, value string, ok bool) {
	for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
		if strings.HasPrefix(line, k+":") {
			return k, strings.TrimSpace(strings.TrimPrefix(line, k+":")), true
		}
	}
	return "", "", false
}

// parseBench parses one result line:
//
//	BenchmarkStepSB-8   1000000   1234 ns/op   64.00 routers/cycle
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBench(line string) (Bench, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Bench{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Bench{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		name = name[:i] // strip the GOMAXPROCS suffix
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Bench{}, false
		}
		if f[i+1] == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[f[i+1]] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
