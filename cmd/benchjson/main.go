// Command benchjson converts `go test -bench` output into a
// machine-readable JSON report, echoing the original output through so
// it still reads normally in a terminal or CI log.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x . | benchjson -o BENCH_2026-08-05.json
//
// Every "Benchmark..." result line becomes one entry with the
// benchmark name (GOMAXPROCS suffix stripped), iteration count,
// ns/op, and any extra b.ReportMetric metrics keyed by unit.  The
// surrounding goos/goarch/pkg header lines are captured too, so a
// report is self-describing when diffing runs across machines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Bench is one benchmark result line.
type Bench struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go_version"`
	Env        map[string]string `json:"env,omitempty"` // goos, goarch, pkg, cpu
	Benchmarks []Bench           `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout only)")
	flag.Parse()

	rep := Report{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Env:       map[string]string{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // echo through
		if k, v, ok := headerLine(line); ok {
			rep.Env[k] = v
			continue
		}
		if b, ok := parseBench(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(rep.Benchmarks), *out)
}

// headerLine recognizes the goos/goarch/pkg/cpu preamble.
func headerLine(line string) (key, value string, ok bool) {
	for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
		if strings.HasPrefix(line, k+":") {
			return k, strings.TrimSpace(strings.TrimPrefix(line, k+":")), true
		}
	}
	return "", "", false
}

// parseBench parses one result line:
//
//	BenchmarkStepSB-8   1000000   1234 ns/op   64.00 routers/cycle
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBench(line string) (Bench, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Bench{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Bench{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		name = name[:i] // strip the GOMAXPROCS suffix
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Bench{}, false
		}
		if f[i+1] == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[f[i+1]] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
