package surfbless_test

import (
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/geom"
	"surfbless/internal/network"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/probe"
	"surfbless/internal/sim"
	"surfbless/internal/stats"
	"surfbless/internal/traffic"
)

// allocHarness is one fabric plus its traffic generator, warmed to
// steady state: every router scratch buffer, link queue, NI queue and
// free-list slot has grown to its working capacity, so further
// stepping must not allocate.
type allocHarness struct {
	fab network.Fabric
	gen *traffic.Generator
	p   *probe.Probe // nil = unprobed; Probe methods are nil-safe
	now int64
}

// newAllocHarness builds a warmed 8×8 fabric at moderate load.
// recycle arms the packet free list (disabled for RUNAHEAD, whose
// retry timers hold packets past ejection).  A non-nil p is wired as
// the fabric and collector probe before warm-up, so the event ring,
// interval series and heatmaps all reach working capacity too.
func newAllocHarness(tb testing.TB, model config.Model, warmup int64, p *probe.Probe) *allocHarness {
	tb.Helper()
	cfg := config.Default(model)
	cfg.Domains = 2
	col := stats.NewCollector(2, 0, 0)
	meter := power.NewMeter(cfg, power.Default45nm())

	fl := &packet.FreeList{}
	recycle := model != config.RUNAHEAD
	var sink func(int, *packet.Packet, int64)
	if recycle {
		sink = func(_ int, p *packet.Packet, _ int64) { fl.Put(p) }
	}
	fab, err := sim.BuildFabric(cfg, nil, sink, col, meter)
	if err != nil {
		tb.Fatal(err)
	}
	if p != nil {
		col.SetProbe(p)
		if ps, ok := fab.(interface{ SetProbe(*probe.Probe) }); ok {
			ps.SetProbe(p)
		}
	}
	gen := traffic.New(cfg.Mesh(), traffic.UniformRandom, []traffic.Source{
		{Rate: 0.025, Class: packet.Ctrl, VNet: -1},
		{Rate: 0.025, Class: packet.Ctrl, VNet: -1},
	}, 1)
	if recycle {
		gen.SetFreeList(fl)
	}
	h := &allocHarness{fab: fab, gen: gen, p: p}
	for ; h.now < warmup; h.now++ {
		gen.Tick(fab, h.now)
		fab.Step(h.now)
		h.p.Tick(h.now, fab.InFlight())
	}
	if recycle {
		// Spare packets absorb in-flight-count fluctuation above the
		// warm-up baseline, and pre-grow the free list's own backing
		// array, so neither the generator nor Put allocates later.
		for i := 0; i < 4096; i++ {
			fl.Put(packet.New(0, geom.Coord{}, geom.Coord{}, 0, packet.Ctrl, 0))
		}
	}
	return h
}

// cycles advances the harness n cycles (traffic + stepping).
func (h *allocHarness) cycles(n int) {
	for i := 0; i < n; i++ {
		h.gen.Tick(h.fab, h.now)
		h.fab.Step(h.now)
		h.p.Tick(h.now, h.fab.InFlight())
		h.now++
	}
}

// stepOnly advances n cycles without generating traffic.
func (h *allocHarness) stepOnly(n int) {
	for i := 0; i < n; i++ {
		h.fab.Step(h.now)
		h.p.Tick(h.now, h.fab.InFlight())
		h.now++
	}
}

// TestStepNoAlloc asserts the tentpole claim of DESIGN.md §12: after
// warm-up, steady-state stepping performs zero heap allocations on
// every fabric.  The simulation is deterministic, so this is an exact
// assertion, not a flaky statistical one.
func TestStepNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	for _, model := range []config.Model{
		config.WH, config.BLESS, config.Surf, config.SB, config.CHIPPER, config.RUNAHEAD,
	} {
		t.Run(model.String(), func(t *testing.T) {
			h := newAllocHarness(t, model, 3000, nil)
			window := func() float64 {
				if model == config.RUNAHEAD {
					// RUNAHEAD cannot recycle (its retry heap reads
					// EjectedAt after ejection), so packet construction in
					// Tick still allocates; the guarantee covers Step
					// itself, fed by the NI backlog built during warm-up.
					return testing.AllocsPerRun(1, func() { h.stepOnly(500) })
				}
				return testing.AllocsPerRun(1, func() { h.cycles(500) })
			}
			// Scratch buffers, link queues and VC fifos grow toward their
			// (bounded) working capacity for tens of thousands of cycles:
			// ever-rarer traffic bursts set new occupancy maxima.  Warm
			// until ten consecutive 500-cycle windows are clean, then
			// demand the next windows stay clean too — a true per-cycle
			// leak never produces a clean window and fails the attempt
			// budget.  The run is deterministic, so a pass is exact and
			// repeatable, not statistical.
			streak := 0
			for attempt := 0; streak < 10; attempt++ {
				if attempt == 600 {
					t.Fatalf("%v: stepping still allocates after 300k warm-up cycles (steady-state leak)", model)
				}
				if window() == 0 {
					streak++
				} else {
					streak = 0
				}
			}
			var avg float64
			if model == config.RUNAHEAD {
				avg = testing.AllocsPerRun(5, func() { h.stepOnly(500) })
			} else {
				avg = testing.AllocsPerRun(5, func() { h.cycles(500) })
			}
			if avg != 0 {
				t.Errorf("%v: %.2f allocs per 500 steady-state cycles, want 0", model, avg)
			}
		})
	}
}

// TestStepNoAllocProbed extends the zero-allocation guarantee to fully
// observed stepping (DESIGN.md §15): an armed probe with a bounded
// measurement window — so Arm preallocates every interval bucket and
// ring segment — plus a flight-recorder tap must not add a single
// allocation to steady-state cycles.  Covers the gated fabrics; the
// probe code paths are model-independent.
func TestStepNoAllocProbed(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	for _, model := range []config.Model{config.SB, config.WH, config.Surf} {
		t.Run(model.String(), func(t *testing.T) {
			p := &probe.Probe{}
			cfg := config.Default(model)
			// MeasureEnd bounds the run so the interval series is fully
			// preallocated at Arm; it comfortably exceeds the warm-up
			// attempt budget below (600 × 500 cycles + warm-up).
			p.Arm(probe.Config{Mesh: cfg.Mesh(), Domains: 2, Every: 100, WarmupEnd: 0, MeasureEnd: 400_000})
			p.AttachTap(probe.NewFlightRecorder(0))
			h := newAllocHarness(t, model, 3000, p)
			streak := 0
			for attempt := 0; streak < 10; attempt++ {
				if attempt == 600 {
					t.Fatalf("%v: probed stepping still allocates after 300k warm-up cycles", model)
				}
				if testing.AllocsPerRun(1, func() { h.cycles(500) }) == 0 {
					streak++
				} else {
					streak = 0
				}
			}
			if avg := testing.AllocsPerRun(5, func() { h.cycles(500) }); avg != 0 {
				t.Errorf("%v: %.2f allocs per 500 probed steady-state cycles, want 0", model, avg)
			}
		})
	}
}
