# Build/test entry points.  `make ci` is the gate every change must
# pass; `make fuzz` gives the fuzz targets a short budget; `make bench`
# regenerates the figure benchmarks with the result cache disabled
# (benchmarks never install a cache, so the timings measure real
# simulations — see internal/experiments.SetCache).

GO ?= go

.PHONY: ci vet lint lint-baseline staticcheck govulncheck build test race race-faults chaos fuzz fuzz-fault bench bench-smoke bench-shard probe-overhead wcta-conformance experiments clean-cache

ci: vet lint lint-baseline build race race-faults chaos bench-smoke bench-shard probe-overhead fuzz-fault wcta-conformance staticcheck govulncheck

vet:
	$(GO) vet ./...

# Repo-specific invariants: hot-path allocations, determinism hazards,
# fingerprint completeness, unguarded hook calls, tile-confined writes
# in sharded phases, stale waivers (DESIGN.md §13/§18).  Exits nonzero
# on any unsuppressed finding and leaves a SARIF log for CI annotation
# surfaces.
lint:
	$(GO) run ./cmd/nocvet -sarif nocvet.sarif ./...

# Ratchet gate: fail on any finding whose stable ID is absent from the
# committed nocvet.baseline.json.  Redundant with `lint` while the
# baseline is empty; the two diverge only if a finding is ever
# deliberately baselined instead of fixed.  Refresh with
#   go run ./cmd/nocvet -write-baseline ./...
lint-baseline:
	$(GO) run ./cmd/nocvet -baseline nocvet.baseline.json ./...

# External analyzers run when the host has them; the hermetic CI image
# is offline (no module proxy), so a missing binary is a loud skip, not
# a failure.  Install locally with:
#   go install honnef.co/go/tools/cmd/staticcheck@latest
#   go install golang.org/x/vuln/cmd/govulncheck@latest
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed; skipping (offline image)"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck: not installed; skipping (offline image)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused -race gate over the failure-handling machinery: fault
# injection, watchdog/degraded runs, checkpoint/resume, and the
# resumable parallel sweep.  Redundant with `race` on a full run, but
# cheap enough to iterate on alone while touching recovery code.
race-faults:
	$(GO) test -race -count=1 \
		-run 'TestFault|TestInactiveFaults|TestWatchdog|TestDegraded|TestConservation|TestRunLoopRecovers|TestPlan|TestWindow|TestInjector|TestCorrupt|TestLoadPlan|TestCheckpoint|TestParallelSweep' \
		./internal/sim ./internal/fault ./internal/simcache ./cmd/sweep

# Sweep-service chaos soak (DESIGN.md §16): in-process coordinator +
# worker fleet under a deterministic killer that hard-kills/restarts
# workers and bounces the coordinator mid-sweep, run repeatedly under
# -race.  Passes only if every job's final CSV is byte-identical to
# the serial reference — zero lost, zero duplicated points.
chaos:
	$(GO) test -race -count=3 -run 'TestChaos|TestWorkerDrain|TestCoordinator' ./internal/sweepsvc

fuzz:
	$(GO) test -fuzz=FuzzConfigJSON -fuzztime=10s ./internal/config
	$(GO) test -fuzz=FuzzFingerprint -fuzztime=10s ./internal/simcache
	$(GO) test -fuzz=FuzzPlanJSON -fuzztime=10s ./internal/fault
	$(GO) test -fuzz=FuzzWaveBalance -fuzztime=10s ./internal/wave
	$(GO) test -fuzz=FuzzFlowSetJSON -fuzztime=10s ./internal/wcta

# Short fault-plan fuzz smoke for the CI gate (full budgets above).
fuzz-fault:
	$(GO) test -fuzz=FuzzPlanJSON -fuzztime=5s ./internal/fault

# Performance gate: the exact zero-alloc steady-state guard for every
# fabric (needs an instrumentation-free build, so no -race here — the
# guard skips itself under the race detector), then a short parallel
# sweep under -race to shake out worker/emitter races.
bench-smoke:
	$(GO) test -run='TestStepNoAlloc|TestRecvIntoReusesBuffer|TestRecvZeroesVacatedTail' -count=1 . ./internal/link
	$(GO) test -race -run='TestParallelSweep' -count=1 ./cmd/sweep

# Sharded-stepping gate (DESIGN.md §17): a 32×32 mesh stepped as four
# tiles under -race must produce results and fingerprints bit-identical
# to serial stepping, on every model with a sharded path.
bench-shard:
	$(GO) test -race -run 'TestShardMatchesSerialGiant' -count=1 ./internal/sim

# Observability budget gate (DESIGN.md §15): probed Step must stay
# within 1.10x of unprobed on the paper's fabrics.  The Overhead
# benchmarks interleave twin probed/unprobed rigs in alternating
# 500-cycle chunks and report the median per-pair ratio, which cancels
# the machine drift that makes independently-timed ratios useless for
# a 10% budget; -gate-probe makes benchjson exit nonzero on a breach.
probe-overhead:
	$(GO) test -run='^$$' -bench='^BenchmarkStep(SB|WH|Surf)Overhead$$' -benchtime=20000x -count=1 . \
		| $(GO) run ./cmd/benchjson -gate-probe 1.10

# Analytical-bound conformance smoke (DESIGN.md §14): seeded and
# deterministic, the full model × mesh × scenario × seed matrix at the
# tiny scale — a few seconds end to end.  Fails if any delivered packet
# exceeds its flow's analytical bound or a tightness anchor goes slack.
wcta-conformance:
	$(GO) run ./cmd/experiments -scale tiny -fig wcta -no-cache

# Benchmarks, plus a machine-readable BENCH_<date>.json report
# (ns/op per fabric model, probe on and off) via cmd/benchjson.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x . | $(GO) run ./cmd/benchjson -o BENCH_$$(date +%F).json

# Regenerate every figure into results/ (cached; add FLAGS=-no-cache
# for fresh simulations).
experiments:
	$(GO) run ./cmd/experiments -scale quick -out results $(FLAGS)

clean-cache:
	rm -rf results/.simcache
