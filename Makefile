# Build/test entry points.  `make ci` is the gate every change must
# pass; `make fuzz` gives the fuzz targets a short budget; `make bench`
# regenerates the figure benchmarks with the result cache disabled
# (benchmarks never install a cache, so the timings measure real
# simulations — see internal/experiments.SetCache).

GO ?= go

.PHONY: ci vet build test race fuzz fuzz-fault bench bench-smoke experiments clean-cache

ci: vet build race bench-smoke fuzz-fault

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -fuzz=FuzzConfigJSON -fuzztime=10s ./internal/config
	$(GO) test -fuzz=FuzzFingerprint -fuzztime=10s ./internal/simcache
	$(GO) test -fuzz=FuzzPlanJSON -fuzztime=10s ./internal/fault

# Short fault-plan fuzz smoke for the CI gate (full budgets above).
fuzz-fault:
	$(GO) test -fuzz=FuzzPlanJSON -fuzztime=5s ./internal/fault

# Performance gate: the exact zero-alloc steady-state guard for every
# fabric (needs an instrumentation-free build, so no -race here — the
# guard skips itself under the race detector), then a short parallel
# sweep under -race to shake out worker/emitter races.
bench-smoke:
	$(GO) test -run='TestStepNoAlloc|TestRecvIntoReusesBuffer|TestRecvZeroesVacatedTail' -count=1 . ./internal/link
	$(GO) test -race -run='TestParallelSweep' -count=1 ./cmd/sweep

# Benchmarks, plus a machine-readable BENCH_<date>.json report
# (ns/op per fabric model, probe on and off) via cmd/benchjson.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x . | $(GO) run ./cmd/benchjson -o BENCH_$$(date +%F).json

# Regenerate every figure into results/ (cached; add FLAGS=-no-cache
# for fresh simulations).
experiments:
	$(GO) run ./cmd/experiments -scale quick -out results $(FLAGS)

clean-cache:
	rm -rf results/.simcache
